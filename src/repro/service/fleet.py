"""Fleet router: shard the session service across worker processes.

A :class:`FleetRouter` is a controller process that speaks the *same*
JSONL wire protocol as a single :class:`~repro.service.server.ServiceServer`
(clients cannot tell the difference) but hosts no sessions itself: it
consistent-hashes each session's *batch group* onto one of N worker
processes — each worker a full ``python -m repro.service --serve`` child
with its own event loop, manager, and checkpoint directory.

Why shard by batch group, not by session?  The manager's whole speedup is
the stacked ``(n, k)`` sweep (:meth:`~repro.service.manager.SessionManager.step`):
sessions of equal shape decide quietness in one comparison.  Routing by
:func:`batch_group` keeps every member of a group *dense on one worker*,
so a stacked sweep never splits across processes and the fleet stays
bit-identical to a single-process manager — the catalog differential in
``tests/test_fleet.py`` is the proof.

Durability and failover
-----------------------
Each worker checkpoints its sessions (on idle/op *and* on a timer,
``checkpoint_interval``) into its own subdirectory.  The router keeps one
pre-spawned **hot standby** worker (empty, no checkpoint dir) plus an
in-memory per-session *row journal*: every fed row is journaled before it
is forwarded, and trimmed only once a worker acknowledges a checkpoint
that covers it.  When a worker dies (SIGKILL, crash, ``FaultPlan`` window)
the monitor task promotes the standby: it replays the dead worker's
checkpoint directory via the ``restore`` wire op, adopts its directory,
and the router re-feeds every journaled row the checkpoint had not yet
captured — exactly once, because the replay asks the worker how many rows
it has (``time + 1 + pending``) and sends only the missing suffix.  In
steady state a failover therefore loses *zero* rows and *zero* sessions
without any client-side involvement.

Connection loss to a worker is treated as worker death (the workers are
local children; their sockets only break when the process does).  A feed
whose reply was lost switches to *confirm* mode after the failover: its
rows are already journaled, the replay owns redelivery, and the handler
merely reads back the authoritative row count.

Rebalancing uses the same checkpoint codec live: ``export`` detaches a
session (state + pending inbox) from one worker and ``import`` re-hosts
it on another, bit-identically (:meth:`FleetRouter.add_worker` /
:meth:`FleetRouter.remove_worker`).

Fault-layer composition: ``FleetRouter(fault_plan=plan)`` interprets the
PR-6 :class:`~repro.faults.plan.CrashWindow` schedule against the fleet —
``node`` picks the worker index (mod N) and ``down_at`` is seconds after
start at which it is SIGKILLed; recovery *is* the standby failover, so
``up_at`` needs no action.

:func:`start_fleet` runs the router (and its workers) behind a daemon
thread and returns a :class:`FleetHandle` — the ``workers=N`` form of
:func:`repro.serve`.
"""

from __future__ import annotations

import asyncio
import bisect
import contextlib
import hashlib
import json
import os
import shutil
import sys
import tempfile
import threading
import traceback
from collections import deque
from pathlib import Path

from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.obs.registry import (
    OBS,
    clock as _obs_clock,
    counter as _obs_counter,
    gauge as _obs_gauge,
    histogram as _obs_histogram,
)
from repro.obs.trace import RECORDER as _obs_recorder, new_trace_id
from repro.service import wire as _wire
from repro.service.manager import (
    DEFAULT_INBOX_LIMIT,
    _atomic_write,
    _check_session_id,
)
from repro.service.server import _LINE_LIMIT, _encode, _session_field, new_event_loop

__all__ = [
    "HashRing",
    "FleetRouter",
    "FleetHandle",
    "start_fleet",
    "batch_group",
    "stable_hash",
    "GROUP_SHARDS",
]

#: Virtual nodes per ring slot: enough that removing one of four workers
#: relocates ~1/4 of the groups instead of a contiguous arc.
DEFAULT_RING_REPLICAS = 64

#: Shards an ``(n, k)`` class is split into.  One giant class would pin
#: the whole fleet to a single worker; sharding by session-id hash spreads
#: it while every *group* (the stacked-sweep unit) stays whole.
GROUP_SHARDS = 16

#: Seconds between router-driven fan-out checkpoints (and journal trims).
DEFAULT_CHECKPOINT_INTERVAL = 0.5

#: Router-side routing-table filename inside the fleet checkpoint root.
_ROUTES_FILE = "router.json"

_ROUTES_SCHEMA = 1

# Registry families (repro/obs): the fleet's health as named series — how
# often failovers happen, how long they take, how much journal is exposed.
_OBS_FAILOVERS = _obs_counter(
    "repro_fleet_failovers_total", "standby promotions after a worker death"
)
_OBS_FAILOVER_SECONDS = _obs_histogram(
    "repro_fleet_failover_seconds",
    "wall time from death detection to a recovered slot (restore + replay)",
)
_OBS_ROWS_REPLAYED = _obs_counter(
    "repro_fleet_rows_replayed_total", "journal rows re-fed during failovers"
)
_OBS_JOURNAL_ROWS = _obs_gauge(
    "repro_fleet_journal_rows",
    "rows journaled but not yet covered by an acknowledged checkpoint",
)
_OBS_WORKER_ROWS = _obs_counter(
    "repro_fleet_worker_rows_total",
    "rows the router delivered to each worker slot",
    ("slot",),
)


def stable_hash(key: str) -> int:
    """Deterministic 64-bit hash of ``key`` (md5 prefix).

    Python's own ``hash()`` is salted per process; the ring must place a
    session on the same worker after a router restart, so the hash has to
    be content-only.
    """
    return int.from_bytes(hashlib.md5(key.encode()).digest()[:8], "big")


def batch_group(n: int, k: int, session_id: str) -> str:
    """Routing key of one session: its stacked-sweep group.

    All sessions sharing a group land on one worker, so the manager's
    ``(n, k)`` stacked quietness sweep stays dense; the
    :data:`GROUP_SHARDS` shard keeps one popular shape from pinning the
    whole fleet to a single worker.
    """
    return f"{int(n)}x{int(k)}/{stable_hash(session_id) % GROUP_SHARDS}"


class HashRing:
    """Consistent-hash ring mapping string keys to named slots.

    Each slot contributes ``replicas`` virtual points; a key belongs to
    the first point at or clockwise of its own hash.  Removing a slot
    relocates only the keys that mapped to it — the property the fleet's
    rebalancing (and its hypothesis suite) relies on.
    """

    def __init__(self, slots=(), *, replicas: int = DEFAULT_RING_REPLICAS):
        if replicas < 1:
            raise ConfigurationError(f"ring replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._slots: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for slot in slots:
            self.add(slot)

    def add(self, slot: str) -> None:
        """Add a slot (its keys move *to* it from current owners)."""
        if not slot or not isinstance(slot, str):
            raise ConfigurationError(f"ring slot must be a non-empty string, got {slot!r}")
        if slot in self._slots:
            raise ConfigurationError(f"slot {slot!r} is already on the ring")
        self._slots.add(slot)
        for i in range(self._replicas):
            self._points.append((stable_hash(f"{slot}#{i}"), slot))
        self._points.sort()

    def remove(self, slot: str) -> None:
        """Remove a slot (only *its* keys relocate)."""
        if slot not in self._slots:
            raise ConfigurationError(f"slot {slot!r} is not on the ring")
        if len(self._slots) == 1:
            raise ConfigurationError("cannot remove the last ring slot")
        self._slots.discard(slot)
        self._points = [p for p in self._points if p[1] != slot]

    def lookup(self, key: str) -> str:
        """The slot owning ``key``."""
        if not self._points:
            raise ConfigurationError("lookup on an empty ring")
        h = stable_hash(key)
        # First point with hash >= h ("" sorts before any slot name).
        i = bisect.bisect_left(self._points, (h, ""))
        if i == len(self._points):
            i = 0
        return self._points[i][1]

    @property
    def slots(self) -> frozenset:
        """Live slot names."""
        return frozenset(self._slots)

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, slot: str) -> bool:
        return slot in self._slots


def _received(reply: dict) -> int:
    """Worker-side total rows received, from a feed/query reply."""
    return int(reply["time"]) + 1 + int(reply["pending"])


class _WorkerLost(ServiceError):
    """The connection to a worker died mid-request (internal marker)."""


class _Forwarded(Exception):
    """Carries a worker's failure reply verbatim to the client."""

    def __init__(self, reply: dict):
        super().__init__(reply.get("error", "worker request failed"))
        self.reply = reply


class _SessionRoute:
    """Router-side state of one session: where it lives, what was fed.

    ``journal`` holds ``(seq, row, trace)`` triples — ``seq`` is the
    absolute row index, ``trace`` the originating push's trace id (or
    ``None`` with observability off) — for every row not yet covered by
    an acknowledged worker checkpoint; ``acked`` is the highest
    received-count a worker has
    confirmed (rows below it are at least in the worker's inbox, rows
    below the trim mark are durable).  ``lock`` serializes feeds so the
    journal order matches the delivery order.
    """

    __slots__ = ("group", "slot", "journal", "next_seq", "acked", "lock")

    def __init__(self, group: str, slot: str, *, next_seq: int = 0):
        self.group = group
        self.slot = slot
        self.journal: deque[tuple[int, list, str | None]] = deque()
        self.next_seq = next_seq
        self.acked = next_seq
        self.lock = asyncio.Lock()


class _WorkerProc:
    """One worker child process plus the router's connection to it.

    The shared connection negotiates the binary framing of
    :mod:`repro.service.wire` at spawn (``wire`` records the outcome);
    throwaway ``fresh_request`` connections stay JSONL — they carry one
    parked query each, where negotiation would cost more than it saves.
    """

    def __init__(self, slot, proc, address, checkpoint_dir, reader, writer, log,
                 wire_mode: str = "jsonl"):
        self.slot = slot
        self.proc = proc
        self.address = address
        self.checkpoint_dir: Path | None = checkpoint_dir
        self._reader = reader
        self._writer = writer
        self._lock = asyncio.Lock()
        self.log = log  # bounded deque of the child's recent output lines
        self.retired = False  # intentional stop: monitor must not fail over
        self.drain_task: asyncio.Task | None = None
        self.wire = wire_mode

    @property
    def pid(self) -> int:
        return self.proc.pid

    async def request(self, payload: dict) -> dict:
        """One round trip on the shared connection (serialized).

        Returns the parsed reply — including ``ok: false`` replies, which
        the caller forwards or maps; only *transport* failure raises
        (:class:`_WorkerLost`), because that is the worker-death signal.
        """
        async with self._lock:
            try:
                if self.wire == "binary":
                    self._writer.write(_wire.encode_request(payload))
                    await self._writer.drain()
                    kind, body = await _wire.read_frame(self._reader)
                    return _wire.decode_reply(kind, body)
                self._writer.write(_encode(payload))
                await self._writer.drain()
                line = await self._reader.readline()
            except (_wire.FrameEOF, _wire.FrameError, _wire.FramePayloadError) as exc:
                # The workers are local children: a broken or truncated
                # frame on the shared link means the process died mid-write.
                raise _WorkerLost(f"worker {self.slot} connection lost: {exc}") from exc
            except (ConnectionError, OSError) as exc:
                raise _WorkerLost(f"worker {self.slot} connection lost: {exc}") from exc
            if not line:
                raise _WorkerLost(f"worker {self.slot} closed its connection")
            return json.loads(line)  # reprolint: disable=R4 — JSONL fallback link

    async def fresh_request(self, payload: dict) -> dict:
        """One round trip on a throwaway connection.

        For ``wait=True`` queries, which park server-side until the
        session drains — parking the *shared* connection would stall every
        other request to this worker behind one slow waiter.
        """
        try:
            reader, writer = await asyncio.open_connection(*self.address, limit=_LINE_LIMIT)
        except (ConnectionError, OSError) as exc:
            raise _WorkerLost(f"worker {self.slot} unreachable: {exc}") from exc
        try:
            writer.write(_encode(payload))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise _WorkerLost(f"worker {self.slot} closed its connection")
            return json.loads(line)  # reprolint: disable=R4 — one-shot JSONL link
        except (ConnectionError, OSError) as exc:
            raise _WorkerLost(f"worker {self.slot} connection lost: {exc}") from exc
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def kill(self) -> None:
        """SIGKILL the child (idempotent)."""
        with contextlib.suppress(ProcessLookupError):
            self.proc.kill()

    def close_connection(self) -> None:
        if self.drain_task is not None:
            self.drain_task.cancel()
        with contextlib.suppress(Exception):
            self._writer.close()


async def _drain_stdout(proc, log) -> None:
    """Keep the child's stdout pipe from filling; remember recent lines."""
    try:
        while True:
            line = await proc.stdout.readline()
            if not line:
                return
            log.append(line.decode(errors="replace").rstrip())
    except (asyncio.CancelledError, ConnectionError, OSError):
        return


class FleetRouter:
    """Route the session-service wire protocol across N worker processes.

    Args
    ----
    host / port:
        Client-facing bind address (port 0 picks an ephemeral port).
    workers:
        Number of worker processes to shard sessions across (>= 1).
    inbox_limit / batch / batch_linger / lookahead:
        Forwarded to every worker (same semantics as
        :class:`~repro.service.server.ServiceServer`).
    checkpoint_dir:
        Root directory for durability: worker ``w<i>`` checkpoints into
        ``<root>/w<i>`` and the router persists its routing table as
        ``<root>/router.json``.  ``None`` uses a private temp directory
        (failover still works; state just does not survive the router).
        A re-started router with the same root re-adopts the whole fleet.
    checkpoint_interval:
        Seconds between worker timer checkpoints *and* router fan-out
        checkpoints; bounds both SIGKILL staleness and journal memory.
    standby:
        Keep one pre-spawned empty worker ready to adopt a dead worker's
        checkpoint directory (failover is one ``restore`` op away instead
        of one process spawn away).  ``False`` spawns replacements on
        demand — slower failover, one fewer process.
    ring_replicas:
        Virtual nodes per worker on the consistent-hash ring.
    fault_plan:
        Optional PR-6 :class:`~repro.faults.plan.FaultPlan`; each
        :class:`~repro.faults.plan.CrashWindow` SIGKILLs worker
        ``node % workers`` at ``down_at`` seconds after start (recovery is
        the standby failover itself, so ``up_at`` needs no action).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        inbox_limit: int = DEFAULT_INBOX_LIMIT,
        batch: bool = True,
        batch_linger: float = 0.0,
        lookahead: bool = True,
        checkpoint_dir: "str | os.PathLike | None" = None,
        checkpoint_interval: float = DEFAULT_CHECKPOINT_INTERVAL,
        standby: bool = True,
        ring_replicas: int = DEFAULT_RING_REPLICAS,
        fault_plan=None,
    ):
        if workers < 1:
            raise ConfigurationError(f"a fleet needs >= 1 worker, got {workers}")
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint_interval must be > 0 seconds, got {checkpoint_interval}"
            )
        self._host = host
        self._port = port
        self.n_workers = workers
        self.inbox_limit = inbox_limit
        self.batch = batch
        self.batch_linger = batch_linger
        self.lookahead = lookahead
        self.checkpoint_interval = checkpoint_interval
        self.keep_standby = standby
        self.fault_plan = fault_plan
        self._given_root = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self._root: Path | None = None
        self._owns_root = checkpoint_dir is None
        self._ring = HashRing(replicas=ring_replicas)
        self._workers: dict[str, _WorkerProc] = {}
        self._worker_seq = 0
        self._standby: _WorkerProc | None = None
        self._sessions: dict[str, _SessionRoute] = {}
        self._next_id = 1
        self._failing: set[str] = set()
        self._slot_events: dict[str, asyncio.Event] = {}
        self._failovers = 0
        self._failover_latencies: list[float] = []
        self._rows_replayed = 0
        self._stopping = False
        self.address: tuple[str, int] | None = None
        self._server: asyncio.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._stopped: asyncio.Event | None = None
        self._monitors: list[asyncio.Task] = []
        self._timer_task: asyncio.Task | None = None
        self._fault_task: asyncio.Task | None = None
        self._standby_task: asyncio.Task | None = None

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Spawn the workers (+standby), rebuild routes, bind the listener."""
        self._stopped = asyncio.Event()
        self._root = self._given_root or Path(tempfile.mkdtemp(prefix="repro-fleet-"))
        self._root.mkdir(parents=True, exist_ok=True)
        saved = self._load_routes()
        spawned = await asyncio.gather(
            *(self._spawn(f"w{i}", checkpoint_dir=self._root / f"w{i}")
              for i in range(self.n_workers))
        )
        for worker in spawned:
            self._workers[worker.slot] = worker
            self._slot_events[worker.slot] = asyncio.Event()
            self._ring.add(worker.slot)
        self._worker_seq = self.n_workers
        if self.keep_standby:
            self._standby = await self._spawn("standby", checkpoint_dir=None)
        await self._rebuild_routes(saved)
        for slot, worker in self._workers.items():
            self._monitors.append(asyncio.create_task(self._monitor_worker(slot, worker)))
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port, limit=_LINE_LIMIT
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        if self.checkpoint_interval is not None:
            self._timer_task = asyncio.create_task(self._checkpoint_timer())
        if self.fault_plan is not None and getattr(self.fault_plan, "crashes", ()):
            self._fault_task = asyncio.create_task(self._run_fault_plan())
        return self.address

    async def run_until_stopped(self) -> None:
        """Serve until :meth:`request_stop`, then stop workers and listener."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()
        self._stopping = True
        for task in (self._timer_task, self._fault_task, self._standby_task, *self._monitors):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        self._persist_routes()
        stops = [self._stop_worker(w) for w in self._workers.values()]
        if self._standby is not None:
            stops.append(self._stop_worker(self._standby))
        await asyncio.gather(*stops, return_exceptions=True)
        self._server.close()
        await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        if self._owns_root:
            shutil.rmtree(self._root, ignore_errors=True)
        current = asyncio.current_task()
        for task in asyncio.all_tasks():
            if task is not current and not task.done():
                task.cancel()

    async def serve(self) -> None:
        """``start`` + ``run_until_stopped`` in one call (the CLI entry)."""
        await self.start()
        await self.run_until_stopped()

    def request_stop(self) -> None:
        """Ask the fleet to shut down (safe from a loop callback)."""
        if self._stopped is not None:
            self._stopped.set()

    def emergency_kill(self) -> None:
        """SIGKILL every child (the last-resort cleanup on abnormal exit)."""
        for worker in list(self._workers.values()):
            worker.kill()
        if self._standby is not None:
            self._standby.kill()

    async def _stop_worker(self, worker: _WorkerProc) -> None:
        worker.retired = True
        with contextlib.suppress(ReproError, asyncio.TimeoutError, OSError):
            await asyncio.wait_for(worker.request({"op": "shutdown"}), timeout=5)
        try:
            await asyncio.wait_for(worker.proc.wait(), timeout=5)
        except asyncio.TimeoutError:
            worker.kill()
            await worker.proc.wait()
        worker.close_connection()

    # ----------------------------------------------------------- spawning

    async def _spawn(self, slot: str, *, checkpoint_dir: Path | None) -> _WorkerProc:
        """Start one worker child and connect to it."""
        argv = [
            sys.executable, "-m", "repro.service",
            "--serve", "127.0.0.1:0",
            "--inbox-limit", str(self.inbox_limit),
        ]
        if not self.batch:
            argv.append("--no-batch")
        if not self.lookahead:
            argv.append("--no-lookahead")
        if self.batch_linger:
            argv += ["--batch-linger", str(self.batch_linger)]
        if checkpoint_dir is not None:
            argv += ["--checkpoint-dir", str(checkpoint_dir)]
            if self.checkpoint_interval is not None:
                argv += ["--checkpoint-interval", str(self.checkpoint_interval)]
        env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
        if OBS.on:
            # Programmatic ``obs.enable()`` in the router must reach the
            # children too, or the fleet's ``obs`` op would merge nothing.
            env["REPRO_OBS"] = "1"
        proc = await asyncio.create_subprocess_exec(
            *argv,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=env,
        )
        log: deque[str] = deque(maxlen=50)
        address = None
        try:
            while address is None:
                line = await asyncio.wait_for(proc.stdout.readline(), timeout=30)
                if not line:
                    raise ServiceError(
                        f"fleet worker {slot} exited before binding "
                        f"(rc={proc.returncode}): {' | '.join(log) or '<no output>'}"
                    )
                text = line.decode(errors="replace").strip()
                log.append(text)
                if text.startswith("listening on "):
                    host, _, port = text.removeprefix("listening on ").rpartition(":")
                    address = (host, int(port))
            reader, writer = await asyncio.open_connection(*address, limit=_LINE_LIMIT)
            # The router-worker link is internal, so it always asks for the
            # binary framing; any non-acceptance degrades to JSONL and a
            # genuinely dead child surfaces as _WorkerLost on first use.
            try:
                wire_mode = await _wire.negotiate(reader, writer)
            except (ReproError, ConnectionError, OSError):
                wire_mode = "jsonl"
        except BaseException:
            with contextlib.suppress(ProcessLookupError):
                proc.kill()
            raise
        worker = _WorkerProc(slot, proc, address, checkpoint_dir, reader, writer, log,
                             wire_mode=wire_mode)
        worker.drain_task = asyncio.create_task(_drain_stdout(proc, log))
        return worker

    async def _spawn_standby(self) -> None:
        """Background replacement for a consumed standby."""
        try:
            worker = await self._spawn("standby", checkpoint_dir=None)
        except Exception:
            traceback.print_exc()
            print("fleet: failed to spawn a replacement standby", file=sys.stderr, flush=True)
            return
        if self._stopping:
            worker.kill()
            return
        self._standby = worker

    async def _take_standby(self) -> _WorkerProc:
        """The promotion candidate: the live standby, else a fresh spawn."""
        standby, self._standby = self._standby, None
        if standby is not None:
            if standby.proc.returncode is None:
                return standby
            standby.retired = True  # died while idle; replace it
        return await self._spawn("standby", checkpoint_dir=None)

    # ----------------------------------------------------------- failover

    async def _monitor_worker(self, slot: str, worker: _WorkerProc) -> None:
        await worker.proc.wait()
        if self._stopping or worker.retired:
            return
        try:
            await self._failover(slot, worker)
        except asyncio.CancelledError:
            raise
        except BaseException:
            # An unrecoverable failover would leave the slot's sessions
            # unreachable forever; fail the whole fleet loudly instead.
            traceback.print_exc()
            print(f"fleet: failover of {slot} failed; shutting down",
                  file=sys.stderr, flush=True)
            self.request_stop()

    async def _failover(self, slot: str, dead: _WorkerProc) -> None:
        """Promote the standby into a dead worker's slot and replay."""
        if self._workers.get(slot) is not dead:
            return  # already replaced (e.g. a stale monitor)
        t0 = _obs_clock()
        self._failing.add(slot)
        dead.close_connection()
        try:
            print(f"fleet: worker {slot} (pid {dead.pid}) died; promoting standby",
                  file=sys.stderr, flush=True)
            replacement = await self._take_standby()
            reply = await replacement.request(
                {"op": "restore", "dir": str(dead.checkpoint_dir)}
            )
            if not reply.get("ok"):
                raise ServiceError(
                    f"standby could not restore {slot} from {dead.checkpoint_dir}: "
                    f"{reply.get('error')}"
                )
            replacement.slot = slot
            replacement.checkpoint_dir = dead.checkpoint_dir
            self._workers[slot] = replacement
            self._monitors.append(
                asyncio.create_task(self._monitor_worker(slot, replacement))
            )
            replayed = await self._replay_journals(slot, replacement)
            elapsed = _obs_clock() - t0
            self._failovers += 1
            self._failover_latencies.append(elapsed)
            self._rows_replayed += replayed
            if OBS.on:
                _OBS_FAILOVERS.inc()
                _OBS_FAILOVER_SECONDS.observe(elapsed)
                _OBS_ROWS_REPLAYED.inc(replayed)
                _obs_recorder.record(
                    "fleet.failover", slot=slot, ts=t0, dur_us=elapsed * 1e6,
                    pid=replacement.pid, rows_replayed=replayed,
                )
            print(
                f"fleet: {slot} recovered on pid {replacement.pid} in "
                f"{elapsed * 1e3:.1f} ms ({int(reply['sessions'])} sessions restored, "
                f"{replayed} rows replayed)",
                file=sys.stderr, flush=True,
            )
        finally:
            self._failing.discard(slot)
            self._slot_changed(slot)
        if self.keep_standby and not self._stopping:
            self._standby_task = asyncio.create_task(self._spawn_standby())

    async def _replay_journals(self, slot: str, worker: _WorkerProc) -> int:
        """Re-feed every journaled row the worker's checkpoint missed.

        Exactly-once: the worker reports how many rows it has
        (``time + 1 + pending``) and only the journal suffix past that is
        re-sent.  Runs with no per-session locks — concurrent feeds for
        this slot journal synchronously and then block on the failover
        event, so the journal is complete and cannot advance under us.
        """
        replayed = 0
        for session_id, route in list(self._sessions.items()):
            if route.slot != slot:
                continue
            reply = await worker.request({"op": "query", "session": session_id})
            if not reply.get("ok"):
                # create/close checkpoint *before* acking, so a routed
                # session is always in the checkpoint; reaching this means
                # the directory was tampered with or lost.
                print(f"fleet: session {session_id} missing after failover: "
                      f"{reply.get('error')}", file=sys.stderr, flush=True)
                continue
            received = _received(reply)
            # Record what the restored worker already holds: feed handlers
            # use ``acked`` to detect that the replay (or the dead worker's
            # checkpoint) covered their rows, so they must not resend.
            route.acked = max(route.acked, received)
            missing = [(row, trace) for seq, row, trace in route.journal
                       if seq >= received]
            if OBS.on and missing:
                _obs_recorder.record(
                    "router.replay", session=session_id, slot=slot,
                    rows=len(missing),
                    traces=[t for t in dict.fromkeys(t for _, t in missing)
                            if t is not None],
                )
            while missing:
                chunk = missing[: self.inbox_limit]
                message = {"op": "feed", "session": session_id,
                           "rows": [row for row, _ in chunk], "replay": True}
                traces = [t for t in dict.fromkeys(t for _, t in chunk)
                          if t is not None]
                if traces:
                    # The replayed rows keep their original client trace
                    # ids: the worker records one ``server.feed`` span per
                    # trace, which is what makes a post-failover row
                    # attributable to the push that first carried it.
                    message["traces"] = traces
                reply = await worker.request(message)
                if reply.get("ok"):
                    route.acked = max(route.acked, _received(reply))
                    replayed += len(chunk)
                    missing = missing[len(chunk):]
                elif reply.get("code") == "backpressure":
                    await worker.fresh_request(
                        {"op": "query", "session": session_id, "wait": True}
                    )
                else:
                    raise ServiceError(
                        f"journal replay for {session_id} failed: {reply.get('error')}"
                    )
        return replayed

    # ------------------------------------------------------- slot waiting

    def _slot_changed(self, slot: str) -> None:
        """Wake everyone parked on this slot (its worker changed state)."""
        event = self._slot_events.get(slot)
        if event is not None:
            self._slot_events[slot] = asyncio.Event()
            event.set()

    async def _slot_ready(self, slot: str) -> None:
        """Park while the slot is mid-failover."""
        while slot in self._failing:
            await self._slot_events[slot].wait()

    async def _wait_replaced(self, slot: str, worker: _WorkerProc) -> None:
        """Park until ``worker`` is no longer the slot's live process.

        Connection loss to a local child means the process died; the
        monitor task notices via ``proc.wait()`` and runs the failover,
        whose completion flips the slot event.
        """
        while self._workers.get(slot) is worker or slot in self._failing:
            await self._slot_events[slot].wait()

    # ------------------------------------------------- routes persistence

    def _persist_routes(self) -> None:
        """Write the routing table next to the worker checkpoint dirs.

        The workers' checkpoints hold the session *state*; this file holds
        what only the router knows — each session's batch group and the id
        counter — so a restarted router re-adopts the whole fleet.
        """
        if self._root is None:
            return
        _atomic_write(
            self._root / _ROUTES_FILE,
            {
                "schema": _ROUTES_SCHEMA,
                "next_id": self._next_id,
                "sessions": {sid: route.group for sid, route in self._sessions.items()},
            },
        )

    def _load_routes(self) -> dict:
        """Saved ``{session_id: group}`` from a previous run (may be empty)."""
        path = self._root / _ROUTES_FILE
        if not path.exists():
            return {}
        data = json.loads(path.read_text())
        if data.get("schema") != _ROUTES_SCHEMA:
            raise ConfigurationError(
                f"unsupported fleet routing-table schema {data.get('schema')!r} at {path}"
            )
        self._next_id = int(data["next_id"])
        return dict(data["sessions"])

    async def _rebuild_routes(self, saved_groups: dict) -> None:
        """Re-adopt sessions the workers restored from their checkpoints.

        Each worker reports what it hosts; groups come from the saved
        routing table (or are recomputed from the session's shape).  If
        the worker count changed across the restart, sessions whose ring
        owner moved are live-migrated to it.
        """
        found: list[tuple[str, str, _SessionRoute]] = []
        for slot, worker in self._workers.items():
            reply = await worker.request({"op": "sessions"})
            if not reply.get("ok"):
                raise ServiceError(f"worker {slot} sessions query failed: {reply.get('error')}")
            for session_id in reply["sessions"]:
                view = await worker.request({"op": "query", "session": session_id})
                if not view.get("ok"):
                    raise ServiceError(
                        f"worker {slot} query of restored session {session_id} failed"
                    )
                group = saved_groups.get(session_id) or batch_group(
                    view["n"], view["k"], session_id
                )
                route = _SessionRoute(group, slot, next_seq=_received(view))
                found.append((session_id, slot, route))
        # Stable adoption order: numeric for router-assigned ids, then name.
        def _order(item):
            sid = item[0]
            num = int(sid[1:]) if sid[1:].isdigit() and sid.startswith("s") else None
            return (0, num) if num is not None else (1, sid)
        for session_id, _, route in sorted(found, key=_order):
            self._sessions[session_id] = route
        if found:
            await self._rebalance()
            self._persist_routes()

    # ------------------------------------------------- periodic checkpoint

    async def _checkpoint_timer(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_interval)
            try:
                await self._checkpoint_fleet()
            except asyncio.CancelledError:
                raise
            except Exception:
                # A failed round (e.g. a worker died mid-fan-out) is
                # retried next tick; the failover path owns recovery.
                traceback.print_exc()

    async def _checkpoint_fleet(self) -> int:
        """Fan a checkpoint out to every worker; trim covered journals.

        The trim mark for each session is its ``acked`` count *captured
        before the checkpoint op is sent*: every row the worker had
        acknowledged by then is in its inbox or state, so a checkpoint
        acknowledged afterwards has persisted it.
        """
        self._persist_routes()
        total = 0
        for slot in list(self._workers):
            if slot in self._failing:
                continue
            worker = self._workers[slot]
            marks = {
                sid: route.acked
                for sid, route in self._sessions.items()
                if route.slot == slot
            }
            try:
                reply = await worker.request({"op": "checkpoint"})
            except _WorkerLost:
                continue  # mid-death; the monitor is (about to be) on it
            if not reply.get("ok"):
                continue
            total += int(reply["sessions"])
            for sid, mark in marks.items():
                route = self._sessions.get(sid)
                if route is None:
                    continue
                while route.journal and route.journal[0][0] < mark:
                    route.journal.popleft()
        if OBS.on:
            _OBS_JOURNAL_ROWS.set(self._journal_rows())
        return total

    def _journal_rows(self) -> int:
        """Rows journaled fleet-wide (the durability exposure right now)."""
        return sum(len(route.journal) for route in self._sessions.values())

    # ----------------------------------------------------- fault schedule

    async def _run_fault_plan(self) -> None:
        """SIGKILL workers on the plan's crash schedule (seconds scale)."""
        start = _obs_clock()
        for window in sorted(self.fault_plan.crashes, key=lambda w: w.down_at):
            delay = window.down_at - (_obs_clock() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            if self._stopping:
                return
            slots = self._ordered_slots()
            slot = slots[window.node % len(slots)]
            worker = self._workers.get(slot)
            if worker is None or slot in self._failing:
                continue
            print(f"fleet: fault plan kills {slot} (pid {worker.pid}) "
                  f"at t={window.down_at}s", file=sys.stderr, flush=True)
            if OBS.on:
                _obs_recorder.record("fleet.kill", slot=slot, pid=worker.pid,
                                     at=window.down_at)
            worker.kill()

    def _ordered_slots(self) -> list[str]:
        """Worker slots in stable (spawn) order — the fault plan's index space."""
        def _key(slot: str):
            return (0, int(slot[1:])) if slot[1:].isdigit() else (1, slot)
        return sorted(self._workers, key=_key)

    # -------------------------------------------------------- client side

    async def _handle_client(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            binary = False
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode({"ok": False, "error": "request line too long",
                                          "code": "bad_request"}))
                    await writer.drain()
                    break
                if not line:
                    break
                response, stop_after = await self._dispatch(line)
                writer.write(_encode(response))
                await writer.drain()
                if stop_after:
                    self.request_stop()
                    break
                if response.get("ok") and response.get("wire") == "binary":
                    # Accepted binary hello — same switch point as a
                    # single server; clients cannot tell a fleet apart.
                    binary = True
                    break
            if binary:
                await self._serve_binary(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _serve_binary(self, reader, writer) -> None:
        """Framed loop after a successful hello (mirrors the server's)."""
        while True:
            try:
                kind, payload = await _wire.read_frame(reader)
            except _wire.FrameEOF:
                return
            except _wire.FrameError as exc:
                writer.write(_wire.encode_json(
                    {"ok": False, "error": str(exc), "code": "bad_frame"}
                ))
                await writer.drain()
                return
            stop_after = False
            if kind == _wire.KIND_FEED:
                reply = await self._feed_frame(payload)
            else:
                response, stop_after = await self._dispatch(payload)
                reply = _wire.encode_json(response)
            writer.write(reply)
            await writer.drain()
            if stop_after:
                self.request_stop()
                return

    async def _feed_frame(self, payload: bytes) -> bytes:
        """Decode one packed feed, route it, pre-encode the packed ack.

        The router journals the *decoded rows* (plain lists), never the
        frame — exactly-once replay and trace continuity across failover
        are framing-agnostic by construction.
        """
        t0 = _obs_clock()
        try:
            batches, replay, trace = _wire.decode_feed(payload)
        except _wire.FramePayloadError as exc:
            return _wire.encode_json({"ok": False, "error": str(exc), "code": "bad_frame"})
        decode_seconds = _obs_clock() - t0
        acks = []
        rows_total = 0
        for session_id, rows in batches:
            request: dict = {"op": "feed", "session": session_id, "rows": rows.tolist()}
            if trace is not None:
                request["trace"] = trace
            if replay:
                request["replay"] = True
            response, _ = await self._dispatch_request(request)
            if not response.get("ok"):
                return _wire.encode_json(response)
            rows_total += len(rows)
            acks.append((int(response["pending"]), int(response["time"])))
        t1 = _obs_clock()
        frame = _wire.encode_ack(acks)
        _wire.observe("binary", rows_total, decode_seconds + (_obs_clock() - t1))
        return frame

    async def _dispatch(self, line: bytes) -> tuple[dict, bool]:
        # Mirrors ServiceServer._dispatch: same protocol, same error
        # envelope — clients must not be able to tell a fleet apart.
        t0 = _obs_clock()
        try:
            request = json.loads(line)  # reprolint: disable=R4 — the JSONL debug path
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": f"malformed JSON: {exc}", "code": "bad_json"}, False
        except UnicodeDecodeError as exc:
            return {"ok": False, "error": f"malformed frame: {exc}", "code": "bad_json"}, False
        decode_seconds = _obs_clock() - t0
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object",
                    "code": "bad_request"}, False
        response, stop_after = await self._dispatch_request(request)
        if request.get("op") == "feed" and response.get("ok"):
            rows = 1 if "row" in request else len(request.get("rows") or ())
            _wire.observe("jsonl", rows, decode_seconds)
        return response, stop_after

    async def _dispatch_request(self, request: dict) -> tuple[dict, bool]:
        op = request.get("op")
        correlation = {"id": request["id"]} if "id" in request else {}
        stop_after = False
        try:
            if op == "create":
                payload = await self._op_create(request)
            elif op == "feed":
                payload = await self._op_feed(request)
            elif op == "query":
                payload = await self._op_query(request)
            elif op == "close":
                payload = await self._op_close(request)
            elif op == "metrics":
                payload = await self._op_metrics()
            elif op == "obs":
                payload = await self._op_obs(request)
            elif op == "sessions":
                payload = {"sessions": list(self._sessions)}
            elif op == "checkpoint":
                payload = {"sessions": await self._checkpoint_fleet(),
                           "dir": str(self._root)}
            elif op == "fleet":
                payload = {"fleet": self.describe()}
            elif op == "ping":
                payload = {}
            elif op == "hello":
                payload = self._op_hello(request)
            elif op == "shutdown":
                payload = {}
                stop_after = True
            else:
                raise ServiceError(f"unknown op {op!r}")
        except _Forwarded as exc:
            forwarded = {k: v for k, v in exc.reply.items() if k != "id"}
            return {**forwarded, **correlation}, False
        except ConfigurationError as exc:
            return {"ok": False, "error": str(exc), "code": "bad_request", **correlation}, False
        except ReproError as exc:
            return {"ok": False, "error": str(exc), "code": "error", **correlation}, False
        except (KeyError, TypeError, ValueError, OverflowError, MemoryError) as exc:
            detail = f"missing field {exc.args[0]!r}" if isinstance(exc, KeyError) else str(exc)
            return {"ok": False, "error": f"bad request: {detail}",
                    "code": "bad_request", **correlation}, False
        except Exception as exc:
            traceback.print_exc()
            return {"ok": False, "error": f"internal error: {type(exc).__name__}: {exc}",
                    "code": "internal", **correlation}, False
        return {"ok": True, **payload, **correlation}, stop_after

    def _route(self, session_id: str) -> _SessionRoute:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServiceError(f"unknown session {session_id!r}") from None

    # ------------------------------------------------------------------ ops

    def _op_hello(self, request: dict) -> dict:
        """Negotiate the connection's framing (mirrors the server's).

        Only an exact ``wire="binary"`` + matching version upgrades; any
        other ask is answered ``wire="jsonl"`` so unknown framings degrade
        to the debug path instead of erroring.
        """
        wanted = request.get("wire", "jsonl")
        try:
            version = int(request.get("version", _wire.WIRE_VERSION))
        except (TypeError, ValueError):
            version = -1
        if wanted == "binary" and version == _wire.WIRE_VERSION:
            return {"wire": "binary", "version": _wire.WIRE_VERSION}
        return {"wire": "jsonl"}

    async def _op_create(self, request: dict) -> dict:
        session_id = request.get("session")
        if session_id is None:
            session_id = f"s{self._next_id}"
            self._next_id += 1
        else:
            _check_session_id(session_id)
        if session_id in self._sessions:
            raise ConfigurationError(f"session id {session_id!r} already exists")
        group = str(request.get("group") or batch_group(
            int(request["n"]), int(request["k"]), session_id
        ))
        slot = self._ring.lookup(group)
        message = {"op": "create", "n": request["n"], "k": request["k"],
                   "session": session_id}
        for key in ("seed", "engine"):
            if key in request:
                message[key] = request[key]
        while True:
            await self._slot_ready(slot)
            worker = self._workers[slot]
            try:
                reply = await worker.request(message)
                break
            except _WorkerLost:
                await self._wait_replaced(slot, worker)
                # The worker checkpoints *before* acking a create, so
                # after failover the session either exists (created, ack
                # lost) or does not (never created — safe to retry).
                probe = await self._workers[slot].request(
                    {"op": "query", "session": session_id}
                )
                if probe.get("ok"):
                    reply = {"ok": True, "session": session_id,
                             "engine": probe["engine"]}
                    break
        if not reply.get("ok"):
            raise _Forwarded(reply)
        self._sessions[session_id] = _SessionRoute(group, slot)
        self._persist_routes()
        return {"session": session_id, "engine": reply.get("engine")}

    async def _op_feed(self, request: dict) -> dict:
        session_id = _session_field(request)
        route = self._route(session_id)
        if "row" in request:
            rows = [request["row"]]
        else:
            rows = request.get("rows")
            if not rows:
                raise ServiceError("feed needs a 'row' or a non-empty 'rows' list")
            rows = list(rows)
        trace = request.get("trace")
        if OBS.on and trace is None:
            # Client pushed without a trace id (its obs is off): mint one
            # at the router so the hop is still traceable through replay.
            trace = new_trace_id()
        async with route.lock:
            if self._sessions.get(session_id) is not route:
                raise ServiceError(f"unknown session {session_id!r}")
            # Journal before forwarding — synchronously, so a failover
            # replay triggered at any later await sees these rows.
            start_seq = route.next_seq
            route.journal.extend(
                (start_seq + i, row, trace) for i, row in enumerate(rows)
            )
            route.next_seq += len(rows)
            message = ({"op": "feed", "session": session_id, "row": rows[0]}
                       if len(rows) == 1
                       else {"op": "feed", "session": session_id, "rows": rows})
            if trace is not None:
                message["trace"] = trace
            if OBS.on:
                _obs_recorder.record("router.feed", trace=trace,
                                     session=session_id, slot=route.slot,
                                     rows=len(rows))
            confirm = False
            while True:
                slot = route.slot
                await self._slot_ready(slot)
                worker = self._workers[slot]
                if route.acked >= route.next_seq:
                    # A failover replay ran between our journal append and
                    # this send and already delivered our rows (``acked``
                    # covers the journal tail, which is ours under the
                    # session lock) — resending would double-feed.
                    confirm = True
                try:
                    if confirm:
                        reply = await worker.request(
                            {"op": "query", "session": session_id}
                        )
                    else:
                        reply = await worker.request(message)
                except _WorkerLost:
                    await self._wait_replaced(slot, worker)
                    # The rows are journaled and the failover replay owns
                    # redelivery; from here just read back the count.
                    confirm = True
                    continue
                if reply.get("ok"):
                    route.acked = max(route.acked, _received(reply))
                    if OBS.on:
                        _OBS_WORKER_ROWS.labels(slot=slot).inc(len(rows))
                    return {"pending": int(reply["pending"]),
                            "time": int(reply["time"])}
                if not confirm:
                    # Refused (backpressure / validation): nothing was
                    # applied, so the journal rolls back in place.  No
                    # await separates the reply from this rollback, so a
                    # replay cannot observe the half-state.
                    for _ in rows:
                        route.journal.pop()
                    route.next_seq = start_seq
                raise _Forwarded(reply)

    async def _op_query(self, request: dict) -> dict:
        session_id = _session_field(request)
        route = self._route(session_id)
        wait = bool(request.get("wait"))
        while True:
            slot = route.slot
            await self._slot_ready(slot)
            worker = self._workers[slot]
            try:
                if wait:
                    # Waiting queries park server-side; give each its own
                    # connection so the shared one stays responsive.
                    reply = await worker.fresh_request(
                        {"op": "query", "session": session_id, "wait": True}
                    )
                else:
                    reply = await worker.request(
                        {"op": "query", "session": session_id}
                    )
            except _WorkerLost:
                await self._wait_replaced(slot, worker)
                continue  # queries are idempotent: retry on the new worker
            if not reply.get("ok"):
                raise _Forwarded(reply)
            return {k: v for k, v in reply.items() if k not in ("ok", "id")}

    async def _op_close(self, request: dict) -> dict:
        session_id = _session_field(request)
        route = self._route(session_id)
        async with route.lock:
            if self._sessions.get(session_id) is not route:
                raise ServiceError(f"unknown session {session_id!r}")
            retried = False
            while True:
                slot = route.slot
                await self._slot_ready(slot)
                worker = self._workers[slot]
                try:
                    reply = await worker.request(
                        {"op": "close", "session": session_id}
                    )
                    break
                except _WorkerLost:
                    await self._wait_replaced(slot, worker)
                    retried = True
            if not reply.get("ok"):
                if retried and "unknown session" in str(reply.get("error", "")):
                    # The close landed (and was checkpointed, pruning the
                    # session) right before the worker died — only the ack
                    # was lost.  Honour it instead of erroring the retry.
                    del self._sessions[session_id]
                    self._persist_routes()
                    return {"session": session_id, "closed": True}
                raise _Forwarded(reply)
            del self._sessions[session_id]
            self._persist_routes()
            return {k: v for k, v in reply.items() if k not in ("ok", "id")}

    async def _op_metrics(self) -> dict:
        from repro.service.metrics import aggregate_snapshots

        per_worker: dict[str, dict] = {}
        for slot in self._ordered_slots():
            worker = self._workers.get(slot)
            if worker is None or slot in self._failing:
                continue
            try:
                reply = await worker.request({"op": "metrics"})
            except _WorkerLost:
                continue
            if reply.get("ok"):
                per_worker[slot] = reply["metrics"]
        aggregate = aggregate_snapshots(per_worker.values())
        latencies = self._failover_latencies
        aggregate["fleet"] = {
            "workers": {
                slot: {
                    "pid": self._workers[slot].pid,
                    "sessions": sum(
                        1 for r in self._sessions.values() if r.slot == slot
                    ),
                    "rows_processed": snap.get("rows_processed", 0),
                    "rows_per_sec": snap.get("rows_per_sec", 0.0),
                }
                for slot, snap in per_worker.items()
            },
            "standby": self._standby is not None and self._standby.proc.returncode is None,
            "failovers": self._failovers,
            "failover_latency_ms": {
                "count": len(latencies),
                "mean": round(sum(latencies) / len(latencies) * 1e3, 1) if latencies else 0.0,
                "max": round(max(latencies) * 1e3, 1) if latencies else 0.0,
            },
            "rows_replayed": self._rows_replayed,
            "journal_rows": self._journal_rows(),
            "per_worker": per_worker,
        }
        if OBS.on:
            _OBS_JOURNAL_ROWS.set(aggregate["fleet"]["journal_rows"])
        return {"metrics": aggregate}

    async def _op_obs(self, request: dict) -> dict:
        """Router obs payload merged with every live worker's spans.

        Worker spans gain a ``slot`` key, so one export shows a trace id
        crossing the failover boundary: the client push on the dead
        worker and its replay on the standby share the same ``trace``.
        """
        from repro.obs import obs_payload

        limit = request.get("limit")
        payload = obs_payload(limit=int(limit) if limit is not None else None)
        for slot in self._ordered_slots():
            worker = self._workers.get(slot)
            if worker is None or slot in self._failing:
                continue
            try:
                reply = await worker.request({"op": "obs", "limit": limit})
            except _WorkerLost:
                continue
            if not reply.get("ok"):
                continue
            payload["spans"].extend(
                {**span, "slot": slot} for span in reply.get("spans") or ()
            )
        return payload

    def describe(self) -> dict:
        """Topology snapshot: the ``fleet`` wire op's payload."""
        return {
            "workers": [
                {
                    "slot": slot,
                    "pid": self._workers[slot].pid,
                    "address": "{}:{}".format(*self._workers[slot].address),
                    "sessions": sum(
                        1 for r in self._sessions.values() if r.slot == slot
                    ),
                }
                for slot in self._ordered_slots()
            ],
            "standby": (
                {"pid": self._standby.pid}
                if self._standby is not None and self._standby.proc.returncode is None
                else None
            ),
            "sessions": len(self._sessions),
            "failovers": self._failovers,
            "rows_replayed": self._rows_replayed,
        }

    # -------------------------------------------------------- rebalancing

    async def add_worker(self) -> str:
        """Grow the fleet by one worker; sessions rebalance onto it live.

        Returns the new slot name.  Only the groups the ring reassigns to
        the new slot move (consistent hashing), each via the checkpoint
        codec's ``export``/``import`` pair — bit-identically, pending
        inbox included.
        """
        slot = f"w{self._worker_seq}"
        self._worker_seq += 1
        worker = await self._spawn(slot, checkpoint_dir=self._root / slot)
        self._workers[slot] = worker
        self._slot_events[slot] = asyncio.Event()
        self._ring.add(slot)
        self._monitors.append(asyncio.create_task(self._monitor_worker(slot, worker)))
        await self._rebalance()
        self._persist_routes()
        return slot

    async def remove_worker(self, slot: str) -> int:
        """Drain a worker's sessions to the rest of the fleet and stop it.

        Returns the number of sessions migrated off it.
        """
        if slot not in self._workers:
            raise ConfigurationError(f"no fleet worker named {slot!r}")
        if len(self._workers) == 1:
            raise ConfigurationError("cannot remove the last fleet worker")
        self._ring.remove(slot)
        moved = await self._rebalance()
        worker = self._workers.pop(slot)
        await self._stop_worker(worker)
        self._slot_changed(slot)
        self._persist_routes()
        return moved

    async def _rebalance(self) -> int:
        """Move every session to its ring owner; returns how many moved."""
        moved = 0
        for session_id, route in list(self._sessions.items()):
            target = self._ring.lookup(route.group)
            if target != route.slot:
                await self._migrate(session_id, route, target)
                moved += 1
        return moved

    async def _migrate(self, session_id: str, route: _SessionRoute, target: str) -> None:
        """Live-move one session between workers via export/import."""
        async with route.lock:
            await self._slot_ready(route.slot)
            await self._slot_ready(target)
            source = self._workers[route.slot]
            destination = self._workers[target]
            exported = await source.request({"op": "export", "session": session_id})
            if not exported.get("ok"):
                raise ServiceError(
                    f"export of {session_id} from {route.slot} failed: "
                    f"{exported.get('error')}"
                )
            imported = await destination.request(
                {"op": "import", "payload": exported["payload"]}
            )
            if not imported.get("ok"):
                # Never strand the payload: put it back where it came from.
                await source.request({"op": "import", "payload": exported["payload"]})
                raise ServiceError(
                    f"import of {session_id} into {target} failed: "
                    f"{imported.get('error')}"
                )
            route.slot = target

    # -------------------------------------------------------- test hooks

    def resolve_slot(self, which: "int | str") -> str:
        """Map a worker index (spawn order) or slot name to a slot name."""
        if isinstance(which, int):
            slots = self._ordered_slots()
            if not 0 <= which < len(slots):
                raise ConfigurationError(
                    f"worker index {which} out of range (fleet has {len(slots)})"
                )
            return slots[which]
        if which not in self._workers:
            raise ConfigurationError(f"no fleet worker named {which!r}")
        return which

    async def kill_worker(self, which: "int | str") -> int:
        """SIGKILL one live worker (the chaos hook); returns its pid.

        Recovery is automatic: the monitor task promotes the standby.
        """
        worker = self._workers[self.resolve_slot(which)]
        pid = worker.pid
        worker.kill()
        return pid


class FleetHandle:
    """A fleet router (and its worker processes) on a background thread.

    Returned by :func:`start_fleet` / ``repro.serve(workers=N)``; usable
    as a context manager.  ``close()`` shuts the router, the workers, and
    the standby down cleanly.
    """

    def __init__(self, router: FleetRouter, loop, thread):
        self._router = router
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the router is listening on."""
        return self._router.address

    @property
    def router(self) -> FleetRouter:
        """The underlying router (inspect only — it lives on its thread)."""
        return self._router

    def _call(self, coro, timeout: float = 120.0):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=timeout)

    def workers(self) -> dict:
        """Topology snapshot (same shape as the ``fleet`` wire op)."""
        async def _describe():
            return self._router.describe()
        return self._call(_describe())

    def kill_worker(self, which: "int | str" = 0) -> int:
        """SIGKILL a worker by index or slot name; returns its pid.

        The fleet fails over to the standby on its own — the next query
        or feed simply parks until the takeover finishes.
        """
        return self._call(self._router.kill_worker(which))

    def add_worker(self) -> str:
        """Grow the fleet by one worker (live rebalance); returns its slot."""
        return self._call(self._router.add_worker())

    def remove_worker(self, slot: "int | str") -> int:
        """Shrink the fleet by one worker (live drain); returns sessions moved."""
        async def _remove():
            return await self._router.remove_worker(self._router.resolve_slot(slot))
        return self._call(_remove())

    def close(self) -> None:
        """Shut the fleet down and join its thread (idempotent)."""
        if self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._router.request_stop)
            self._thread.join(timeout=60)
        if self._thread.is_alive():  # wedged shutdown: never leak children
            self._router.emergency_kill()

    def __enter__(self) -> "FleetHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_fleet(host: str = "127.0.0.1", port: int = 0, **options) -> FleetHandle:
    """Run a :class:`FleetRouter` on a daemon thread; returns its handle.

    Args
    ----
    host / port:
        Client-facing bind address; port 0 picks an ephemeral port (read
        it back from ``handle.address``).
    options:
        Forwarded to :class:`FleetRouter` (``workers``, ``inbox_limit``,
        ``checkpoint_dir``, ``checkpoint_interval``, ``fault_plan``, ...).

    Raises
    ------
    ServiceError
        If the router or any worker fails to start.
    """
    started = threading.Event()
    state: dict = {}

    def _run() -> None:
        loop = new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            router = FleetRouter(host, port, **options)
            state["router"] = router
            state["loop"] = loop

            async def _main() -> None:
                try:
                    await router.start()
                except (OSError, ReproError) as exc:
                    state["error"] = exc
                    router.emergency_kill()
                    started.set()
                    return
                started.set()
                await router.run_until_stopped()

            loop.run_until_complete(_main())
        except Exception as exc:  # startup errors outside _main (bad options)
            state["error"] = exc
            started.set()
        finally:
            if "router" in state:
                state["router"].emergency_kill()
            loop.close()

    thread = threading.Thread(target=_run, name="repro-fleet", daemon=True)
    thread.start()
    started.wait(timeout=120)
    if "error" in state:
        thread.join(timeout=10)
        raise ServiceError(f"fleet failed to start: {state['error']}") from state["error"]
    if "router" not in state or state["router"].address is None:
        raise ServiceError("fleet failed to start (thread did not report an address)")
    return FleetHandle(state["router"], state["loop"], thread)
