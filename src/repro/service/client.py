"""Blocking JSONL client for the streaming session service.

One :class:`ServiceClient` is one TCP connection with one request in
flight at a time (the server multiplexes many such connections into its
batched sweeps).  :class:`SessionHandle` wraps the per-session ops —
push-a-row, read-top-k, read-message-count — in the same shape as a local
:class:`~repro.core.monitor.OnlineSession`.

The client is deliberately synchronous (plain sockets, no asyncio): it is
what a sensor gateway, a shell script, or a test drives, and it needs no
event loop of its own.
"""

from __future__ import annotations

import json
import socket

import numpy as np

from repro.errors import BackpressureError, ServiceError

__all__ = ["ServiceClient", "SessionHandle"]


def _parse_address(address) -> tuple[str, int]:
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ServiceError(f"address must be 'host:port' or (host, port), got {address!r}")
        return host, int(port)
    host, port = address
    return host, int(port)


class ServiceClient:
    """Connect to a running service; create and drive sessions over it.

    Args
    ----
    address:
        ``(host, port)`` tuple or ``"host:port"`` string — e.g. the
        ``address`` of a :class:`~repro.service.server.ServerHandle`.
    timeout:
        Socket timeout in seconds for each request/response round trip
        (waiting queries park server-side until the inbox drains, so keep
        this comfortably above the expected drain time).
    """

    def __init__(self, address, *, timeout: float = 60.0):
        host, port = _parse_address(address)
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceError(f"cannot connect to service at {host}:{port}: {exc}") from exc
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------ plumbing

    def request(self, op: str, **fields) -> dict:
        """One raw round trip; returns the reply payload.

        Raises
        ------
        BackpressureError
            When the server refused a feed with ``code="backpressure"``.
        ServiceError
            For any other failure reply, a closed connection, or
            malformed server output.
        """
        payload = {"op": op, **fields}
        try:
            self._file.write((json.dumps(payload, separators=(",", ":")) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ServiceError(f"service connection lost during {op!r}: {exc}") from exc
        if not line:
            raise ServiceError(f"service closed the connection during {op!r}")
        try:
            reply = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed service reply: {exc}") from exc
        if not reply.get("ok"):
            if reply.get("code") == "backpressure":
                raise BackpressureError(fields.get("session", "?"), reply.get("limit", -1))
            raise ServiceError(reply.get("error", "service request failed"))
        return reply

    def close(self) -> None:
        """Close the connection (sessions stay alive server-side)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------------- ops

    def create_session(self, n: int, k: int, *, seed=None, engine: str | None = None) -> "SessionHandle":
        """Open a session on the server; returns its handle."""
        fields: dict = {"n": n, "k": k}
        if seed is not None:
            fields["seed"] = seed
        if engine is not None:
            fields["engine"] = engine
        reply = self.request("create", **fields)
        return SessionHandle(self, reply["session"])

    def session(self, session_id: str) -> "SessionHandle":
        """Handle for an existing server-side session id."""
        return SessionHandle(self, session_id)

    def session_ids(self) -> list[str]:
        """Ids of every live server-side session (e.g. the fleet a
        restarted ``--checkpoint-dir`` server restored)."""
        return list(self.request("sessions")["sessions"])

    def checkpoint(self) -> dict:
        """Force the server to persist all sessions *now*; returns
        ``{"sessions": count, "dir": path}``.

        The server also checkpoints on its own (idle, create/close, clean
        shutdown) — this op is the synchronous barrier a client calls when
        it must know state is durable before proceeding.  Fails if the
        server runs without ``--checkpoint-dir``.
        """
        reply = self.request("checkpoint")
        return {"sessions": reply["sessions"], "dir": reply["dir"]}

    def metrics(self) -> dict:
        """The server's metrics snapshot (see
        :class:`~repro.service.metrics.MetricsSnapshot`)."""
        return self.request("metrics")["metrics"]

    def ping(self) -> bool:
        """Liveness round trip."""
        return bool(self.request("ping").get("ok"))

    def shutdown(self) -> None:
        """Ask the server to shut down cleanly (acknowledged first)."""
        self.request("shutdown")


class SessionHandle:
    """Client-side face of one server-side session."""

    def __init__(self, client: ServiceClient, session_id: str):
        self._client = client
        self.id = session_id

    @staticmethod
    def _rowlist(row) -> list[int]:
        return np.asarray(row).tolist()

    def feed(self, row, *, block: bool = True) -> dict:
        """Push one observation row; returns ``{"pending", "time"}``.

        With ``block=True`` (default) a backpressure refusal waits for the
        server to drain this session and retries; with ``block=False`` the
        :class:`~repro.errors.BackpressureError` propagates.
        """
        fields = {"session": self.id, "row": self._rowlist(row)}
        while True:
            try:
                return self._client.request("feed", **fields)
            except BackpressureError:
                if not block:
                    raise
                self._client.request("query", session=self.id, wait=True)

    def feed_rows(self, rows, *, block: bool = True) -> dict:
        """Push several rows in one round trip (same backpressure policy)."""
        fields = {"session": self.id, "rows": [self._rowlist(r) for r in np.asarray(rows)]}
        while True:
            try:
                return self._client.request("feed", **fields)
            except BackpressureError:
                if not block:
                    raise
                self._client.request("query", session=self.id, wait=True)

    def query(self, *, wait: bool = False) -> dict:
        """Full state: time, top-k, message count, pending depth.

        ``wait=True`` parks until every fed row has been stepped, so the
        answer reflects all of this handle's feeds.
        """
        return self._client.request("query", session=self.id, wait=wait)

    def topk(self, *, wait: bool = True) -> list[int]:
        """Current top-k node ids (ascending)."""
        return self.query(wait=wait)["topk"]

    def message_count(self, *, wait: bool = True) -> int:
        """Protocol messages this session has cost so far."""
        return self.query(wait=wait)["messages"]

    def pending(self) -> int:
        """Rows fed but not yet stepped server-side."""
        return self.query()["pending"]

    def close(self) -> dict:
        """Close the server-side session; returns its final state."""
        return self._client.request("close", session=self.id)
