"""Blocking JSONL client for the streaming session service.

One :class:`ServiceClient` is one TCP connection with one request in
flight at a time (the server multiplexes many such connections into its
batched sweeps).  :class:`SessionHandle` wraps the per-session ops —
push-a-row, read-top-k, read-message-count — in the same shape as a local
:class:`~repro.core.monitor.OnlineSession`.

The client is deliberately synchronous (plain sockets, no asyncio): it is
what a sensor gateway, a shell script, or a test drives, and it needs no
event loop of its own.

Fault tolerance
---------------
Real gateways talk to the service over networks that drop and servers
that restart, so the client carries a :class:`RetryPolicy`:

* **connecting** retries with exponential backoff + jitter up to the
  policy's attempt budget, then raises the typed
  :class:`~repro.errors.ServiceConnectError` (each attempt bounded by
  ``connect_timeout``, each established connection by the per-op
  ``timeout``);
* **idempotent ops** (query/ping/sessions/metrics/checkpoint) that lose
  the connection mid-flight transparently reconnect and resend;
* **feeds** are *not* blindly resent — a lost reply leaves it unknown
  whether the server enqueued the rows.  :class:`SessionHandle` tracks
  the server's acknowledged row count (``time + 1 + pending`` from every
  reply), and on reconnect queries it back and resends only the suffix
  the server never received: exactly-once feeding across connection
  loss and ``--checkpoint-dir`` server restarts, from the client's own
  bookkeeping (single writer per session assumed).

Wire framing
------------
``ServiceClient(wire="binary")`` negotiates the packed framing of
:mod:`repro.service.wire` on every (re)connection via the ``hello`` op,
falling back to JSONL transparently when the server declines — results
are bit-identical either way.  ``push_linger`` adds client-side push
batching: :meth:`SessionHandle.feed` buffers rows locally and coalesces
them into one feed frame per linger window (or per ``push_max`` rows);
any query/close flushes first, and flushed batches ride the same
exactly-once resume path as direct feeds.
"""

from __future__ import annotations

import json
import random
import socket
import time as _time
from dataclasses import dataclass

import numpy as np

from repro.errors import BackpressureError, ServiceConnectError, ServiceError
from repro.obs import OBS, new_trace_id
from repro.service import wire as _wire

__all__ = ["RetryPolicy", "ServiceClient", "SessionHandle"]

#: Ops safe to resend verbatim after a lost connection: they read state
#: or trigger a convergent side effect (a double checkpoint is a no-op).
_IDEMPOTENT_OPS = frozenset({"query", "ping", "sessions", "metrics", "checkpoint", "fleet", "obs"})


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a :class:`ServiceClient` tries before giving up.

    ``attempts`` bounds both the initial connect and each transparent
    reconnect; between attempts the client sleeps
    ``min(backoff * 2**i, backoff_max)`` scaled by up to ``jitter``
    relative noise (decorrelating a fleet of clients reconnecting to a
    restarted server).  ``connect_timeout`` caps each TCP connect;
    the per-op deadline lives on :class:`ServiceClient` (``timeout``).
    """

    attempts: int = 3
    connect_timeout: float = 5.0
    backoff: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ServiceError(f"retry attempts must be >= 1, got {self.attempts}")
        if self.connect_timeout <= 0 or self.backoff < 0 or self.backoff_max < 0:
            raise ServiceError("retry timeouts/backoff must be positive")
        if not 0 <= self.jitter <= 1:
            raise ServiceError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        base = min(self.backoff * (2.0**attempt), self.backoff_max)
        return base * (1.0 + self.jitter * rng.random())


class _ConnectionLost(ServiceError):
    """The established connection died mid-request (internal marker)."""


def _parse_address(address) -> tuple[str, int]:
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ServiceError(f"address must be 'host:port' or (host, port), got {address!r}")
        return host, int(port)
    host, port = address
    return host, int(port)


class ServiceClient:
    """Connect to a running service; create and drive sessions over it.

    Args
    ----
    address:
        ``(host, port)`` tuple or ``"host:port"`` string — e.g. the
        ``address`` of a :class:`~repro.service.server.ServerHandle`.
    timeout:
        Socket timeout in seconds for each request/response round trip
        (waiting queries park server-side until the inbox drains, so keep
        this comfortably above the expected drain time).
    retry:
        Connect/reconnect behaviour; defaults to :class:`RetryPolicy`'s
        defaults.  ``RetryPolicy(attempts=1)`` restores fail-fast
        connects.
    wire:
        ``"jsonl"`` (default) or ``"binary"``.  Binary is negotiated per
        connection via the ``hello`` op and silently falls back to JSONL
        when the server declines; ``negotiated_wire`` reports the mode
        the *current* connection actually speaks.
    push_linger:
        Seconds :meth:`SessionHandle.feed` may buffer pushed rows
        client-side before coalescing them into one feed frame (0
        disables batching — every ``feed`` is one round trip).
    push_max:
        Buffered-row cap per session that forces a flush regardless of
        the linger window.

    Raises
    ------
    ServiceConnectError
        When no connection could be established within the retry budget.
    """

    def __init__(
        self,
        address,
        *,
        timeout: float = 60.0,
        retry: RetryPolicy | None = None,
        wire: str = "jsonl",
        push_linger: float = 0.0,
        push_max: int = 128,
    ):
        if wire not in ("jsonl", "binary"):
            raise ServiceError(f"wire must be 'jsonl' or 'binary', got {wire!r}")
        if push_linger < 0:
            raise ServiceError(f"push_linger must be >= 0 seconds, got {push_linger}")
        if push_max < 1:
            raise ServiceError(f"push_max must be >= 1 row, got {push_max}")
        self._host, self._port = _parse_address(address)
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._wire = wire
        self._mode = "jsonl"  # what the *current* connection negotiated
        self._push_linger = float(push_linger)
        self._push_max = int(push_max)
        self._jitter_rng = random.Random(0x5EED ^ hash((self._host, self._port)))
        self._sock: socket.socket | None = None
        self._file = None
        self._connect()

    # ------------------------------------------------------------ plumbing

    @property
    def negotiated_wire(self) -> str:
        """Framing of the current connection (``"binary"`` or ``"jsonl"``)."""
        return self._mode

    def _connect(self) -> None:
        """Establish the TCP connection, retrying per the policy.

        The binary hello runs inside the attempt loop, so a connection
        that dies mid-negotiation counts as a failed attempt and every
        reconnect — including :class:`RetryPolicy` resumes mid-feed —
        renegotiates the framing before any op uses the link.
        """
        policy = self._retry
        last_error: Exception | None = None
        for attempt in range(policy.attempts):
            if attempt:
                _time.sleep(policy.delay(attempt - 1, self._jitter_rng))
            try:
                sock = socket.create_connection(
                    (self._host, self._port), timeout=policy.connect_timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            sock.settimeout(self._timeout)  # per-op deadline from here on
            file = sock.makefile("rwb")
            try:
                mode = self._negotiate(file) if self._wire == "binary" else "jsonl"
            except (OSError, ServiceError) as exc:
                last_error = exc
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            self._sock = sock
            self._file = file
            self._mode = mode
            return
        raise ServiceConnectError(self._host, self._port, policy.attempts, last_error)

    def _negotiate(self, file) -> str:
        """Run the binary hello on a fresh connection; returns the mode."""
        hello = _wire.hello_payload("binary")
        file.write((json.dumps(hello, separators=(",", ":")) + "\n").encode())
        file.flush()
        line = file.readline()
        if not line:
            raise ServiceError("connection closed during wire negotiation")
        try:
            reply = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed hello reply: {exc}") from exc
        return "binary" if _wire.accepts_binary(reply) else "jsonl"

    def reconnect(self) -> None:
        """Drop the current connection (if any) and establish a fresh one."""
        self._teardown()
        self._connect()

    def drop_connection(self) -> None:
        """Sever the TCP connection without closing the client.

        Fault-injection seam (``tools/service_smoke.py --fault-profile``):
        the next op observes a lost connection and takes the ordinary
        retry/resume path, exactly as if the network had cut the link.
        """
        self._teardown()

    def _teardown(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def _roundtrip(self, op: str, fields: dict) -> dict:
        if self._file is None:
            raise _ConnectionLost(f"no connection for {op!r} (link was severed)")
        payload = {"op": op, **fields}
        reply = (
            self._exchange_binary(op, payload)
            if self._mode == "binary"
            else self._exchange_jsonl(op, payload)
        )
        if not reply.get("ok"):
            if reply.get("code") == "backpressure":
                raise BackpressureError(fields.get("session", "?"), reply.get("limit", -1))
            raise ServiceError(reply.get("error", "service request failed"))
        return reply

    @staticmethod
    def _json_default(obj):
        # A numpy batch can land here when a binary connection degrades
        # to JSONL mid-resume (feed_rows passes arrays through on binary).
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        raise TypeError(f"not JSON serializable: {type(obj).__name__}")

    def _exchange_jsonl(self, op: str, payload: dict) -> dict:
        try:
            self._file.write((json.dumps(payload, separators=(",", ":"),
                                         default=self._json_default) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise _ConnectionLost(f"service connection lost during {op!r}: {exc}") from exc
        if not line:
            raise _ConnectionLost(f"service closed the connection during {op!r}")
        try:
            reply = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed service reply: {exc}") from exc
        return reply

    def _exchange_binary(self, op: str, payload: dict) -> dict:
        # Plain feeds pack into one KIND_FEED frame and come back as a
        # struct-packed ack; everything else rides KIND_JSON frames.
        try:
            self._file.write(_wire.encode_request(payload))
            self._file.flush()
            kind, body = _wire.read_frame_blocking(self._file)
        except _wire.FrameEOF:
            raise _ConnectionLost(f"service closed the connection during {op!r}") from None
        except _wire.FrameError as exc:
            raise ServiceError(f"malformed service reply frame: {exc}") from exc
        except OSError as exc:
            raise _ConnectionLost(f"service connection lost during {op!r}: {exc}") from exc
        try:
            return _wire.decode_reply(kind, body)
        except _wire.FramePayloadError as exc:
            raise ServiceError(f"malformed service reply: {exc}") from exc

    def request(self, op: str, **fields) -> dict:
        """One raw round trip; returns the reply payload.

        Idempotent ops (query/ping/sessions/metrics/checkpoint) that lose
        the connection are transparently retried over a fresh one, within
        the retry policy's attempt budget.  Mutating ops (feed, create,
        close, shutdown) fail on the first connection loss — resending
        them blindly could double-apply; see :meth:`SessionHandle.feed`
        for the resumable path.

        Raises
        ------
        BackpressureError
            When the server refused a feed with ``code="backpressure"``.
        ServiceConnectError
            When reconnecting exhausted the retry budget.
        ServiceError
            For any other failure reply, a lost connection on a
            non-retryable op, or malformed server output.
        """
        attempts = self._retry.attempts if op in _IDEMPOTENT_OPS else 1
        last: ServiceError | None = None
        for attempt in range(attempts):
            if attempt:
                self.reconnect()  # ServiceConnectError propagates typed
            try:
                return self._roundtrip(op, fields)
            except _ConnectionLost as exc:
                last = exc
                if self._sock is not None:
                    self._teardown()
        raise last

    def close(self) -> None:
        """Close the connection (sessions stay alive server-side)."""
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------------- ops

    def create_session(self, n: int, k: int, *, seed=None, engine: str | None = None) -> "SessionHandle":
        """Open a session on the server; returns its handle."""
        fields: dict = {"n": n, "k": k}
        if seed is not None:
            fields["seed"] = seed
        if engine is not None:
            fields["engine"] = engine
        reply = self.request("create", **fields)
        return SessionHandle(self, reply["session"], acked=0)

    def session(self, session_id: str) -> "SessionHandle":
        """Handle for an existing server-side session id."""
        return SessionHandle(self, session_id)

    def session_ids(self) -> list[str]:
        """Ids of every live server-side session (e.g. the fleet a
        restarted ``--checkpoint-dir`` server restored)."""
        return list(self.request("sessions")["sessions"])

    def checkpoint(self) -> dict:
        """Force the server to persist all sessions *now*; returns
        ``{"sessions": count, "dir": path}``.

        The server also checkpoints on its own (idle, create/close, clean
        shutdown) — this op is the synchronous barrier a client calls when
        it must know state is durable before proceeding.  Fails if the
        server runs without ``--checkpoint-dir``.
        """
        reply = self.request("checkpoint")
        return {"sessions": reply["sessions"], "dir": reply["dir"]}

    def metrics(self) -> dict:
        """The server's metrics snapshot (see
        :class:`~repro.service.metrics.MetricsSnapshot`)."""
        return self.request("metrics")["metrics"]

    def fleet(self) -> dict:
        """Topology of a fleet router: workers, standby, failover counts.

        Only answered by ``repro.serve(workers=N)`` /
        ``python -m repro.service --serve --workers N`` (a single-process
        server rejects the op — which is also how a client can tell the
        two apart).
        """
        return self.request("fleet")["fleet"]

    def obs(self, *, limit: int | None = None) -> dict:
        """The target's observability payload: ``enabled``, Prometheus
        text (``prom``), the registry snapshot (``metrics``) and recent
        trace ``spans`` (capped at ``limit`` when given).  A fleet router
        merges its workers' spans in, tagged with their slot."""
        fields = {"limit": limit} if limit is not None else {}
        reply = self.request("obs", **fields)
        return {key: reply[key] for key in ("enabled", "prom", "metrics", "spans") if key in reply}

    def ping(self) -> bool:
        """Liveness round trip."""
        return bool(self.request("ping").get("ok"))

    def shutdown(self) -> None:
        """Ask the server to shut down cleanly (acknowledged first)."""
        self.request("shutdown")


class SessionHandle:
    """Client-side face of one server-side session.

    ``acked`` seeds the handle's record of how many rows the server has
    already received for this session (0 for a freshly created session,
    unknown — looked up lazily — for an adopted one); it is what makes
    :meth:`feed` resumable across connection loss and server restarts.
    """

    def __init__(self, client: ServiceClient, session_id: str, *, acked: int | None = None):
        self._client = client
        self.id = session_id
        self._acked = acked
        # Client-side push batching (``push_linger``): rows buffered here
        # until the linger window or ``push_max`` coalesces them into one
        # feed frame.  Flushes ride ``_feed_resumable``, so buffered rows
        # keep the exactly-once guarantee across lost connections.
        self._push_buf: list[list[int]] = []
        self._push_deadline = 0.0

    @staticmethod
    def _rowlist(row) -> list[int]:
        return np.asarray(row).tolist()

    @staticmethod
    def _received(reply: dict) -> int:
        """Server-side total rows received, from any feed/query reply.

        ``time`` is the last *stepped* row index (-1 before the first) and
        ``pending`` the fed-but-unstepped depth, so their sum (+1) is the
        fed total regardless of how far the stepper has gotten.
        """
        return int(reply["time"]) + 1 + int(reply["pending"])

    def _sync_acked(self) -> int:
        """(Re)learn the server's received-row count for this session."""
        self._acked = self._received(self._client.request("query", session=self.id))
        return self._acked

    def _feed_resumable(self, rows: list[list[int]], block: bool) -> dict:
        """Send one feed batch exactly once, resuming across lost links.

        On connection loss the reply is unknowable, so the handle
        reconnects, asks the server how many rows it has, and resends
        only what is missing.  A server restarted from an *older*
        checkpoint can report fewer rows than were acked before this
        batch — rows this handle no longer holds — which is unrecoverable
        here and raised as such (feed after a ``checkpoint`` barrier, as
        ``tools/service_smoke.py --fault-profile`` does, to avoid it).
        """
        if self._acked is None:
            self._sync_acked()
        base = self._acked
        remaining = rows
        # With observability on, every push carries a trace id end to end:
        # the router journals it per row, so even rows replayed to a
        # standby after a worker death stay attributable to this push.
        trace = new_trace_id() if OBS.on else None
        while True:
            fields = {"session": self.id, "rows": remaining}
            if len(remaining) == 1:
                fields = {"session": self.id, "row": remaining[0]}
            if trace is not None:
                fields["trace"] = trace
            try:
                reply = self._client.request("feed", **fields)
                self._acked = self._received(reply)
                return reply
            except BackpressureError:
                if not block:
                    raise
                self._client.request("query", session=self.id, wait=True)
            except _ConnectionLost:
                self._client.reconnect()
                received = self._sync_acked()
                delivered = received - base
                if delivered < 0:
                    raise ServiceError(
                        f"session {self.id!r}: server lost {-delivered} previously "
                        "acknowledged rows (restarted from an older checkpoint); "
                        "cannot resume this feed"
                    ) from None
                if delivered >= len(rows):
                    # The whole batch landed; only the reply was lost.
                    return self._client.request("query", session=self.id)
                remaining = rows[delivered:]
                base = received

    def feed(self, row, *, block: bool = True) -> dict:
        """Push one observation row; returns ``{"pending", "time"}``.

        With ``block=True`` (default) a backpressure refusal waits for the
        server to drain this session and retries; with ``block=False`` the
        :class:`~repro.errors.BackpressureError` propagates.  A connection
        lost mid-feed is resumed exactly once over a fresh connection (see
        the class docstring).

        With the client's ``push_linger`` set, the row may be buffered
        locally instead of sent: the reply then carries ``"buffered":
        true`` (and the buffer depth as ``"pending"``), and the batch
        goes out as one frame when the linger window closes, the buffer
        hits ``push_max``, or any query/close forces a flush.
        """
        if self._client._push_linger > 0:
            return self._push(self._rowlist(row), block)
        return self._feed_resumable([self._rowlist(row)], block)

    def _push(self, row: list, block: bool) -> dict:
        now = _time.monotonic()
        if not self._push_buf:
            self._push_deadline = now + self._client._push_linger
        self._push_buf.append(row)
        if len(self._push_buf) >= self._client._push_max or now >= self._push_deadline:
            return self.flush(block=block)
        return {
            "ok": True,
            "buffered": True,
            "pending": len(self._push_buf),
            "time": (self._acked if self._acked is not None else 0) - 1,
        }

    def flush(self, *, block: bool = True) -> dict | None:
        """Send any locally buffered pushes now (``None`` if buffer empty)."""
        if not self._push_buf:
            return None
        rows, self._push_buf = self._push_buf, []
        return self._feed_resumable(rows, block)

    def feed_rows(self, rows, *, block: bool = True) -> dict:
        """Push several rows in one round trip (same backpressure and
        resume-on-loss policy as :meth:`feed`)."""
        self.flush(block=block)
        batch = np.asarray(rows)
        if (
            self._client.negotiated_wire == "binary"
            and batch.ndim == 2
            and batch.size
            and np.issubdtype(batch.dtype, np.integer)
        ):
            # Binary framing packs the array directly — no tolist() /
            # JSON detour.  Anything else (ragged, floats) goes through
            # the list path so server-side validation answers identically.
            return self._feed_resumable(batch, block)
        return self._feed_resumable([self._rowlist(r) for r in batch], block)

    def query(self, *, wait: bool = False) -> dict:
        """Full state: time, top-k, message count, pending depth.

        ``wait=True`` parks until every fed row has been stepped, so the
        answer reflects all of this handle's feeds (any locally buffered
        pushes are flushed first).
        """
        self.flush()
        return self._client.request("query", session=self.id, wait=wait)

    def topk(self, *, wait: bool = True) -> list[int]:
        """Current top-k node ids (ascending)."""
        return self.query(wait=wait)["topk"]

    def message_count(self, *, wait: bool = True) -> int:
        """Protocol messages this session has cost so far."""
        return self.query(wait=wait)["messages"]

    def pending(self) -> int:
        """Rows fed but not yet stepped server-side."""
        return self.query()["pending"]

    def close(self) -> dict:
        """Close the server-side session; returns its final state (any
        locally buffered pushes are flushed first)."""
        self.flush()
        return self._client.request("close", session=self.id)
