"""Differential testing between the faithful, vectorized and fast engines.

All three engines implement Algorithm 1 from the paper and follow the same
documented randomness convention, so for the same seed their behaviour must
match **exactly**:

* top-k trajectory (every step),
* reset times and non-reset handler times,
* per-phase message counts.

The faithful and vectorized engines are fully independent implementations;
the fast engine (:mod:`repro.engine.fast`) shares the protocol round loop
with the vectorized one but derives its control flow (segment skipping)
independently, so the three-way comparison pins both the protocol semantics
and the event-detection logic.  Any mismatch indicates a semantic bug; the
:class:`DifferentialReport` pinpoints the first diverging quantity.

Since the unified-run redesign every engine is exercised through
``repro.run(spec, engine=...)`` and compared on the common
:class:`~repro.engine.results.RunResult` shape — the differential check
therefore also covers the registry dispatch and the result adapters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.monitor import MonitorConfig
from repro.core.protocols import ProtocolConfig

__all__ = ["DifferentialReport", "differential_check"]


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential run."""

    equal: bool
    detail: str
    faithful_messages: int
    vectorized_messages: int
    fast_messages: int = -1

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equal


def _compare_counting_results(a, b) -> str | None:
    """First difference between two results, or ``None`` when equal.

    Works on any pair sharing the counting-result field layout —
    native ``VectorizedResult``/``FastResult`` objects or unified
    :class:`~repro.engine.results.RunResult` adapters — and compares
    field-by-field exact equality.
    """
    name_a = getattr(a, "engine", "a")
    name_b = getattr(b, "engine", "b")
    if not np.array_equal(a.topk_history, b.topk_history):
        t = int(np.argmax((a.topk_history != b.topk_history).any(axis=1)))
        return (
            f"top-k trajectories diverge first at t={t}: "
            f"{name_a}={a.topk_history[t].tolist()} {name_b}={b.topk_history[t].tolist()}"
        )
    if a.reset_times != b.reset_times:
        return f"reset times differ: {name_a}={a.reset_times} {name_b}={b.reset_times}"
    if a.handler_times != b.handler_times:
        return f"handler times differ: {name_a}={a.handler_times} {name_b}={b.handler_times}"
    if a.by_phase != b.by_phase:
        keys = sorted(set(a.by_phase) | set(b.by_phase))
        diffs = [
            f"{key}: {name_a}={a.by_phase.get(key, 0)} {name_b}={b.by_phase.get(key, 0)}"
            for key in keys
            if a.by_phase.get(key, 0) != b.by_phase.get(key, 0)
        ]
        return "per-phase message counts differ: " + "; ".join(diffs)
    if a.resets != b.resets or a.handler_calls != b.handler_calls:
        return (
            f"counters differ: resets {a.resets} vs {b.resets}, "
            f"handlers {a.handler_calls} vs {b.handler_calls}"
        )
    return None


def differential_check(
    values: np.ndarray,
    k: int,
    *,
    seed=0,
    skip_redundant_min: bool = False,
) -> DifferentialReport:
    """Run all three engines on the same instance and compare everything.

    Every engine runs through the unified ``repro.run`` path, so this also
    pins the registry dispatch and the ``RunResult`` adapters.
    """
    from repro.api import RunSpec, run

    spec = RunSpec(
        values,
        k=k,
        seed=seed,
        config=MonitorConfig(
            audit=False,
            skip_redundant_min=skip_redundant_min,
            protocol=ProtocolConfig(),
            collect_events=True,
        ),
    )
    faithful = run(spec, engine="faithful")
    vector = run(spec, engine="vectorized")
    fast = run(spec, engine="fast")

    totals = (faithful.total_messages, vector.total_messages, fast.total_messages)
    detail = _compare_counting_results(vector, fast)
    if detail is not None:
        return DifferentialReport(False, "vectorized vs fast: " + detail, *totals)
    detail = _compare_counting_results(faithful, vector)
    if detail is not None:
        return DifferentialReport(False, "faithful vs vectorized: " + detail, *totals)
    return DifferentialReport(True, "exact match", *totals)
