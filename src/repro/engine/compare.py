"""Differential testing between the faithful and vectorized engines.

Both engines implement Algorithm 1 from the paper independently but follow
the same documented randomness convention, so for the same seed their
behaviour must match **exactly**:

* top-k trajectory (every step),
* reset times and non-reset handler times,
* per-phase message counts.

Any mismatch indicates a semantic bug in one of the implementations; the
:class:`DifferentialReport` pinpoints the first diverging quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import StepKind
from repro.core.monitor import MonitorConfig, TopKMonitor
from repro.core.protocols import ProtocolConfig
from repro.engine.vectorized import run_vectorized

__all__ = ["DifferentialReport", "differential_check"]


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential run."""

    equal: bool
    detail: str
    faithful_messages: int
    vectorized_messages: int

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equal


def differential_check(
    values: np.ndarray,
    k: int,
    *,
    seed=0,
    skip_redundant_min: bool = False,
) -> DifferentialReport:
    """Run both engines on the same instance and compare everything."""
    protocol = ProtocolConfig()
    cfg = MonitorConfig(
        audit=False,
        skip_redundant_min=skip_redundant_min,
        protocol=protocol,
        collect_events=True,
    )
    faithful = TopKMonitor(n=values.shape[1], k=k, seed=seed, config=cfg).run(values)
    vector = run_vectorized(values, k, seed=seed, skip_redundant_min=skip_redundant_min)

    if not np.array_equal(faithful.topk_history, vector.topk_history):
        t = int(np.argmax((faithful.topk_history != vector.topk_history).any(axis=1)))
        return DifferentialReport(
            False,
            f"top-k trajectories diverge first at t={t}: "
            f"faithful={faithful.topk_history[t].tolist()} vectorized={vector.topk_history[t].tolist()}",
            faithful.total_messages,
            vector.total_messages,
        )

    f_resets = faithful.reset_times()
    if f_resets != vector.reset_times:
        return DifferentialReport(
            False,
            f"reset times differ: faithful={f_resets} vectorized={vector.reset_times}",
            faithful.total_messages,
            vector.total_messages,
        )

    f_handler = faithful.handler_times()
    if f_handler != vector.handler_times:
        return DifferentialReport(
            False,
            f"handler times differ: faithful={f_handler} vectorized={vector.handler_times}",
            faithful.total_messages,
            vector.total_messages,
        )

    f_phases = {p.value: c for p, c in faithful.ledger.by_phase.items() if c}
    v_phases = {p: c for p, c in vector.by_phase.items() if c}
    if f_phases != v_phases:
        keys = sorted(set(f_phases) | set(v_phases))
        diffs = [
            f"{key}: faithful={f_phases.get(key, 0)} vectorized={v_phases.get(key, 0)}"
            for key in keys
            if f_phases.get(key, 0) != v_phases.get(key, 0)
        ]
        return DifferentialReport(
            False,
            "per-phase message counts differ: " + "; ".join(diffs),
            faithful.total_messages,
            vector.total_messages,
        )

    # Redundant final sanity: reset/handler totals.
    init_resets = sum(1 for e in faithful.events if e.kind is StepKind.INIT_RESET)
    if faithful.resets != vector.resets or faithful.handler_calls != vector.handler_calls:
        return DifferentialReport(
            False,
            f"counters differ: resets {faithful.resets} vs {vector.resets} "
            f"(init={init_resets}), handlers {faithful.handler_calls} vs {vector.handler_calls}",
            faithful.total_messages,
            vector.total_messages,
        )

    return DifferentialReport(True, "exact match", faithful.total_messages, vector.total_messages)
