"""Differential testing between the faithful, vectorized and fast engines.

All three engines implement Algorithm 1 from the paper and follow the same
documented randomness convention, so for the same seed their behaviour must
match **exactly**:

* top-k trajectory (every step),
* reset times and non-reset handler times,
* per-phase message counts.

The faithful and vectorized engines are fully independent implementations;
the fast engine (:mod:`repro.engine.fast`) shares the protocol round loop
with the vectorized one but derives its control flow (segment skipping)
independently, so the three-way comparison pins both the protocol semantics
and the event-detection logic.  Any mismatch indicates a semantic bug; the
:class:`DifferentialReport` pinpoints the first diverging quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.events import StepKind
from repro.core.monitor import MonitorConfig, TopKMonitor
from repro.core.protocols import ProtocolConfig
from repro.engine.fast import run_fast
from repro.engine.vectorized import run_vectorized

__all__ = ["DifferentialReport", "differential_check"]


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one differential run."""

    equal: bool
    detail: str
    faithful_messages: int
    vectorized_messages: int
    fast_messages: int = -1

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equal


def _compare_counting_results(vector, fast) -> str | None:
    """First difference between two counting-engine results, or ``None``.

    Both engines emit the same result container, so the comparison is
    field-by-field exact equality.
    """
    if not np.array_equal(vector.topk_history, fast.topk_history):
        t = int(np.argmax((vector.topk_history != fast.topk_history).any(axis=1)))
        return (
            f"top-k trajectories diverge first at t={t}: "
            f"vectorized={vector.topk_history[t].tolist()} fast={fast.topk_history[t].tolist()}"
        )
    if vector.reset_times != fast.reset_times:
        return f"reset times differ: vectorized={vector.reset_times} fast={fast.reset_times}"
    if vector.handler_times != fast.handler_times:
        return f"handler times differ: vectorized={vector.handler_times} fast={fast.handler_times}"
    if vector.by_phase != fast.by_phase:
        keys = sorted(set(vector.by_phase) | set(fast.by_phase))
        diffs = [
            f"{key}: vectorized={vector.by_phase.get(key, 0)} fast={fast.by_phase.get(key, 0)}"
            for key in keys
            if vector.by_phase.get(key, 0) != fast.by_phase.get(key, 0)
        ]
        return "per-phase message counts differ: " + "; ".join(diffs)
    if vector.resets != fast.resets or vector.handler_calls != fast.handler_calls:
        return (
            f"counters differ: resets {vector.resets} vs {fast.resets}, "
            f"handlers {vector.handler_calls} vs {fast.handler_calls}"
        )
    return None


def differential_check(
    values: np.ndarray,
    k: int,
    *,
    seed=0,
    skip_redundant_min: bool = False,
) -> DifferentialReport:
    """Run all three engines on the same instance and compare everything."""
    protocol = ProtocolConfig()
    cfg = MonitorConfig(
        audit=False,
        skip_redundant_min=skip_redundant_min,
        protocol=protocol,
        collect_events=True,
    )
    faithful = TopKMonitor(n=values.shape[1], k=k, seed=seed, config=cfg).run(values)
    vector = run_vectorized(values, k, seed=seed, skip_redundant_min=skip_redundant_min)
    fast = run_fast(values, k, seed=seed, skip_redundant_min=skip_redundant_min)

    fast_detail = _compare_counting_results(vector, fast)
    if fast_detail is not None:
        return DifferentialReport(
            False,
            "vectorized vs fast: " + fast_detail,
            faithful.total_messages,
            vector.total_messages,
            fast.total_messages,
        )

    if not np.array_equal(faithful.topk_history, vector.topk_history):
        t = int(np.argmax((faithful.topk_history != vector.topk_history).any(axis=1)))
        return DifferentialReport(
            False,
            f"top-k trajectories diverge first at t={t}: "
            f"faithful={faithful.topk_history[t].tolist()} vectorized={vector.topk_history[t].tolist()}",
            faithful.total_messages,
            vector.total_messages,
            fast.total_messages,
        )

    f_resets = faithful.reset_times()
    if f_resets != vector.reset_times:
        return DifferentialReport(
            False,
            f"reset times differ: faithful={f_resets} vectorized={vector.reset_times}",
            faithful.total_messages,
            vector.total_messages,
            fast.total_messages,
        )

    f_handler = faithful.handler_times()
    if f_handler != vector.handler_times:
        return DifferentialReport(
            False,
            f"handler times differ: faithful={f_handler} vectorized={vector.handler_times}",
            faithful.total_messages,
            vector.total_messages,
            fast.total_messages,
        )

    f_phases = {p.value: c for p, c in faithful.ledger.by_phase.items() if c}
    v_phases = {p: c for p, c in vector.by_phase.items() if c}
    if f_phases != v_phases:
        keys = sorted(set(f_phases) | set(v_phases))
        diffs = [
            f"{key}: faithful={f_phases.get(key, 0)} vectorized={v_phases.get(key, 0)}"
            for key in keys
            if f_phases.get(key, 0) != v_phases.get(key, 0)
        ]
        return DifferentialReport(
            False,
            "per-phase message counts differ: " + "; ".join(diffs),
            faithful.total_messages,
            vector.total_messages,
            fast.total_messages,
        )

    # Redundant final sanity: reset/handler totals.
    init_resets = sum(1 for e in faithful.events if e.kind is StepKind.INIT_RESET)
    if faithful.resets != vector.resets or faithful.handler_calls != vector.handler_calls:
        return DifferentialReport(
            False,
            f"counters differ: resets {faithful.resets} vs {vector.resets} "
            f"(init={init_resets}), handlers {faithful.handler_calls} vs {vector.handler_calls}",
            faithful.total_messages,
            vector.total_messages,
            fast.total_messages,
        )

    return DifferentialReport(
        True, "exact match", faithful.total_messages, vector.total_messages, fast.total_messages
    )
