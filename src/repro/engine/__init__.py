"""High-throughput NumPy engine for Algorithm 1.

:mod:`repro.engine.vectorized` re-implements the monitor with pure array
operations and counter-only accounting — no transports, no message or event
objects — for large ``(T, n)`` sweeps (experiment E5 and the benchmarks).

:mod:`repro.engine.compare` differentially tests it against the faithful
object engine: both follow the randomness convention documented in
:mod:`repro.core.protocols`, so for equal seeds their *entire* output —
top-k trajectory, reset times, per-phase message counts — must be
bit-identical (invariant I4).
"""

from repro.engine.vectorized import VectorizedResult, run_vectorized
from repro.engine.compare import DifferentialReport, differential_check

__all__ = [
    "VectorizedResult",
    "run_vectorized",
    "DifferentialReport",
    "differential_check",
]
