"""Engines for Algorithm 1 and the registry that makes them pluggable.

:mod:`repro.engine.registry` is the seam: every implementation of
Algorithm 1 registers a name, capability flags, and a runner, and becomes
reachable through ``repro.run(spec, engine=name)``, the CLI, and the
benchmarks without changes anywhere else.  Built-ins:

* ``faithful`` (:mod:`repro.engine.faithful` wrapping
  :class:`~repro.core.monitor.TopKMonitor`) — transports, ledger, events;
  audit and every ablation.
* ``vectorized`` (:mod:`repro.engine.vectorized`) — the monitor re-derived
  in pure array operations with counter-only accounting.
* ``fast`` (:mod:`repro.engine.fast`) — event-driven segment skipping:
  whole-array reductions locate the next violating step, quiet segments are
  filled by slice assignment; typically ≥10× faster again on the
  quiet-heavy workloads the algorithm targets.

All engines return the unified :class:`~repro.engine.results.RunResult`
and follow the randomness convention documented in
:mod:`repro.core.protocols`, so for equal seeds their *entire* output —
top-k trajectory, reset times, per-phase message counts — must be
bit-identical (invariant I4).  :mod:`repro.engine.compare` enforces this
three ways through the unified run path.

``run_vectorized`` and ``run_fast`` remain as deprecated shims around the
registry engines.

The package namespace is lazy: the layer-zero kernel
(:mod:`repro.engine.kernel`) is importable from :mod:`repro.core` without
dragging the engines (and their ``repro.core`` imports) in circularly.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — static names for type checkers
    from repro.engine.compare import DifferentialReport, differential_check
    from repro.engine.fast import FastResult, run_fast
    from repro.engine.registry import (
        ENGINES,
        EngineInfo,
        get_engine,
        list_engines,
        register_engine,
    )
    from repro.engine.results import RunResult
    from repro.engine.vectorized import VectorizedResult, run_vectorized

_EXPORTS = {
    "EngineInfo": "repro.engine.registry",
    "ENGINES": "repro.engine.registry",
    "register_engine": "repro.engine.registry",
    "get_engine": "repro.engine.registry",
    "list_engines": "repro.engine.registry",
    "RunResult": "repro.engine.results",
    "VectorizedResult": "repro.engine.vectorized",
    "run_vectorized": "repro.engine.vectorized",
    "FastResult": "repro.engine.fast",
    "run_fast": "repro.engine.fast",
    "DifferentialReport": "repro.engine.compare",
    "differential_check": "repro.engine.compare",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "EngineInfo",
    "ENGINES",
    "register_engine",
    "get_engine",
    "list_engines",
    "RunResult",
    "VectorizedResult",
    "run_vectorized",
    "FastResult",
    "run_fast",
    "DifferentialReport",
    "differential_check",
]
