"""High-throughput NumPy engines for Algorithm 1.

:mod:`repro.engine.vectorized` re-implements the monitor with pure array
operations and counter-only accounting — no transports, no message or event
objects — for large ``(T, n)`` sweeps (experiment E5 and the benchmarks).

:mod:`repro.engine.fast` goes one step further: an event-driven engine that
exploits the segment-skip invariant (filters are static between
communication steps) to locate the next violating step with whole-array
reductions and fill quiet segments by slice assignment — typically ≥10×
faster again on the quiet-heavy workloads the algorithm targets.

:mod:`repro.engine.compare` differentially tests all three engines: they
follow the randomness convention documented in :mod:`repro.core.protocols`,
so for equal seeds their *entire* output — top-k trajectory, reset times,
per-phase message counts — must be bit-identical (invariant I4).
"""

from repro.engine.vectorized import VectorizedResult, run_vectorized
from repro.engine.fast import FastResult, run_fast
from repro.engine.compare import DifferentialReport, differential_check

__all__ = [
    "VectorizedResult",
    "run_vectorized",
    "FastResult",
    "run_fast",
    "DifferentialReport",
    "differential_check",
]
