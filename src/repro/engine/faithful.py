"""Registry adapter for the faithful object engine.

The faithful engine is :class:`~repro.core.monitor.TopKMonitor` — the
transport/ledger/event implementation of Algorithm 1.  It is the only
engine that supports per-step auditing, message recording, and the A1/A3
ablations, which is why the counting engines point at it in their error
messages.  The core module stays registry-agnostic; this adapter is the
only place that binds it to the engine seam.
"""

from __future__ import annotations

import numpy as np

from repro.core.checkpoint import restore_session, save_session
from repro.core.monitor import MonitorConfig, OnlineSession, TopKMonitor
from repro.engine.registry import (
    CAP_ABLATIONS,
    CAP_AUDIT,
    CAP_CHECKPOINT,
    CAP_EVENTS,
    CAP_MESSAGES,
    CAP_STREAMING,
    CAP_TRAJECTORY,
    register_engine,
)
from repro.engine.results import RunResult

__all__ = []


def _run_faithful(values: np.ndarray, k: int, *, seed, config: MonitorConfig) -> RunResult:
    result = TopKMonitor(n=values.shape[1], k=k, seed=seed, config=config).run(values)
    return RunResult.from_monitor(result, engine="faithful")


def _session_factory(n: int, k: int, *, seed=None, config=None) -> OnlineSession:
    if config is None:
        # Streaming sessions live indefinitely and nothing in the service
        # reads per-step events; the batch default (collect_events=True)
        # would grow one StepEvent per row forever.  Callers who want the
        # instrumentation pass an explicit config.
        config = MonitorConfig(collect_events=False)
    return OnlineSession(n, k, seed=seed, config=config)


def _session_restore(state: dict) -> OnlineSession:
    # Restored service sessions get the streaming-default instrumentation
    # (no per-step event growth), same as _session_factory's default.
    return restore_session(state, config=MonitorConfig(collect_events=False))


register_engine(
    "faithful",
    description="object-model monitor: transports, ledger, events; audit + all ablations",
    capabilities={
        CAP_TRAJECTORY, CAP_EVENTS, CAP_MESSAGES, CAP_AUDIT, CAP_ABLATIONS,
        CAP_STREAMING, CAP_CHECKPOINT,
    },
    runner=_run_faithful,
    session_factory=_session_factory,
    session_snapshot=save_session,
    session_restore=_session_restore,
)
