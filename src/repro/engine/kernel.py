"""The filter kernel: one implementation of the paper's central object.

Algorithm 1's coordinator state is a *filter state* — the TOP/BOTTOM side
partition and the shared doubled bound ``M2 = T+ + T-`` — and its central
decision is *quietness*: "does this observation row violate any filter?"
A TOP node violates when ``2·v < M2`` (it fell below the midpoint), a
BOTTOM node when ``2·v > M2``.  Before this module existed that comparison
was re-derived in four places (the faithful monitor, the vectorized
kernel, the fast engine's lookahead reductions, and the service manager's
stacked sweep); now every layer calls one of the three entry points here:

* :meth:`FilterState.violates` — the scalar per-row check (and
  :meth:`FilterState.violators`, the id-producing form handlers need);
* :func:`violates_stacked` — many sessions' rows decided in one stacked
  comparison (the service manager's batched sweep);
* :meth:`FilterState.scan_quiet` — cross-row lookahead over a ``(B, n)``
  block in geometrically growing chunks, returning the first violating
  row index (the fast engine's segment skip, and the service's deep-inbox
  drain).

The exact-arithmetic convention (see :mod:`repro.core.monitor`): ``M`` is
a half-integer, so the doubled bound keeps everything in int64.  For the
block scans the doubled comparisons fold into integer thresholds on the
raw reductions — ``2·v < M2  ⇔  v < ceil(M2/2)`` and ``2·v > M2  ⇔
v > floor(M2/2)`` — exact for any sign.

The module also hosts the shared *round loop* (Algorithm 2 with message
accounting: :func:`protocol_run`, :func:`reset_sweeps`) so the protocol
semantics cannot drift between the counting engines, and the
:meth:`FilterState.snapshot` / :meth:`FilterState.from_snapshot` pair the
checkpoint layer (:mod:`repro.core.checkpoint`) builds session
checkpoint/restore on.

This module deliberately imports nothing from :mod:`repro.core` or
:mod:`repro.service` — it is the layer below all of them.  The one
upward-looking exception is :mod:`repro.obs` (itself a leaf): when
``OBS.on`` the round loop publishes per-phase run/message/timer series
into the unified metrics registry, and when it is off (the default) the
only cost is one boolean attribute load per protocol execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.registry import OBS, clock as _obs_clock, counter as _obs_counter
from repro.util.intmath import ceil_log2

__all__ = [
    "FilterState",
    "SegmentScanner",
    "violates_stacked",
    "violates_value",
    "protocol_run",
    "reset_sweeps",
    "PHASES",
]

# Phase keys mirrored from repro.model.message.Phase (plain strings — the
# counting engines deliberately avoid importing the object model).
PHASES = (
    "violation_min",
    "violation_max",
    "handler_max",
    "handler_min",
    "protocol_start",
    "protocol_round",
    "reset_protocol",
    "reset_broadcast",
    "midpoint_broadcast",
)

# Chunked lookahead: start small so churn-heavy inputs only ever reduce a
# few rows past the current step, grow geometrically so long quiet segments
# are covered in O(log(segment)) whole-array reductions.
_SCAN_CHUNK_MIN = 16
_SCAN_CHUNK_MAX = 8192

_FILTER_SCHEMA = 1


def _thresholds(m2: int) -> tuple[int, int]:
    """Integer thresholds equivalent to the doubled comparisons.

    ``2·v < m2  ⇔  v < lo`` with ``lo = ceil(m2/2)``, and
    ``2·v > m2  ⇔  v > hi`` with ``hi = floor(m2/2)`` — exact for any sign.
    """
    return -((-m2) // 2), m2 // 2


def _selector(ids: np.ndarray):
    """A column selector for ``ids``: a view-producing slice when the ids
    are contiguous (common when node base levels order the top-k), else the
    index array itself (fancy-indexed gather)."""
    if ids.size and int(ids[-1]) - int(ids[0]) + 1 == ids.size:
        return slice(int(ids[0]), int(ids[-1]) + 1)
    return ids


def violates_value(value: int, is_top: bool, m2: int) -> bool:
    """The node-local scalar form of the filter check.

    A real sensor evaluates exactly this against its last broadcast bound
    (:class:`~repro.distributed.node.NodeAgent` does); it is the same
    comparison :meth:`FilterState.violates` vectorizes over a row.
    """
    doubled = 2 * int(value)
    return doubled < m2 if is_top else doubled > m2


@dataclass(eq=False)
class FilterState:
    """One coordinator's filter state: partition, bound, running extremes.

    ``sides``
        The TOP/BOTTOM partition (``True`` = TOP), shape ``(n,)`` bool.
    ``m2``
        The doubled filter bound ``2·M = T+ + T-``.
    ``t_plus`` / ``t_minus``
        The reset bookkeeping: running min over TOP / max over BOTTOM
        observed since the last reset (Lemma 3.2's certificates).
    ``top_ids`` / ``bot_ids``
        Cached ascending id vectors of each side, refreshed by
        :meth:`install` (they change only at resets).  The mask-based
        checks below read ``sides`` directly, so external mutation of the
        partition (failure-injection tests corrupt it on purpose) is
        always observed; only the block scans rely on the cache.
    """

    sides: np.ndarray
    m2: int = 0
    t_plus: int = 0
    t_minus: int = 0
    top_ids: np.ndarray = field(init=False, repr=False)
    bot_ids: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.sides = np.asarray(self.sides, dtype=bool)
        self.refresh_cache()

    @classmethod
    def blank(cls, n: int, *, all_top: bool = False) -> "FilterState":
        """A pre-initialization state (everything BOTTOM, or TOP for the
        trivial ``k == n`` monitor whose answer never changes)."""
        return cls(sides=np.full(n, all_top, dtype=bool))

    @property
    def n(self) -> int:
        """Number of nodes in the partition."""
        return self.sides.size

    def refresh_cache(self) -> None:
        """Rebuild ``top_ids``/``bot_ids`` from ``sides``."""
        self.top_ids = np.flatnonzero(self.sides).astype(np.int64, copy=False)
        self.bot_ids = np.flatnonzero(~self.sides).astype(np.int64, copy=False)

    # ------------------------------------------------------ the quietness check

    def violates(self, row: np.ndarray) -> bool:
        """Scalar entry point: does any node's value leave its filter?"""
        doubled = 2 * row
        return bool(
            ((self.sides & (doubled < self.m2)) | (~self.sides & (doubled > self.m2))).any()
        )

    def violators(self, row: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Violating node ids ``(top, bottom)``, each ascending.

        TOP nodes violate below the bound, BOTTOM nodes above it — the
        id-producing form the violation handler feeds to the protocols.
        """
        doubled = 2 * row
        viol_top = np.flatnonzero(self.sides & (doubled < self.m2))
        viol_bot = np.flatnonzero(~self.sides & (doubled > self.m2))
        return viol_top, viol_bot

    @staticmethod
    def violates_banded(
        row: np.ndarray, bands: "dict[int, tuple[int | None, int | None]]"
    ) -> list[int]:
        """Per-member band form of the quietness check: ids whose doubled
        value leaves their ``(lo2, hi2)`` interval (``None`` = unbounded
        side), in ``bands``'s iteration order.

        This is the same ``2·v`` vs doubled-bound comparison as
        :meth:`violates`, generalized from the single partition bound to
        one band per member — the ordered-top-k extension's internal rank
        filters reduce to it, which is why it lives here (R1: the
        quietness comparison has exactly one home).
        """
        out: list[int] = []
        for member, (lo2, hi2) in bands.items():
            doubled = 2 * int(row[member])
            if (lo2 is not None and doubled < lo2) or (hi2 is not None and doubled > hi2):
                out.append(member)
        return out

    def scan_quiet(self, block: np.ndarray, start: int = 0) -> int:
        """Lookahead entry point: first row index ``>= start`` of ``block``
        that violates a filter, or ``len(block)`` if the whole suffix is
        quiet.

        The filters are static between communication events, so quietness
        of each row is a pure function of the input — the per-row
        reductions ``min over TOP`` / ``max over BOTTOM`` vectorize over
        time.  Scanning proceeds in geometrically growing chunks so
        churn-heavy blocks never pay for lookahead they don't use, while a
        fully quiet block costs O(log B) whole-array reductions.

        Requires a non-trivial installed partition (both sides non-empty)
        and a fresh id cache.
        """
        lo, hi = _thresholds(self.m2)
        top_sel = _selector(self.top_ids)
        bot_sel = _selector(self.bot_ids)
        T = block.shape[0]
        pos = start
        span = _SCAN_CHUNK_MIN
        while pos < T:
            chunk = block[pos : min(T, pos + span)]
            window = (chunk[:, top_sel].min(axis=1) < lo) | (chunk[:, bot_sel].max(axis=1) > hi)
            first = int(window.argmax())
            if window[first]:
                return pos + first
            pos += chunk.shape[0]
            span = min(span * 4, _SCAN_CHUNK_MAX)
        return T

    # ------------------------------------------------------- state transitions

    def absorb(self, min_value: int, max_value: int) -> bool:
        """Fold a handler's completed extremes into ``T+``/``T-``.

        Returns ``True`` when ``T+ < T-`` — the top-k set provably changed
        and the caller must run a :meth:`install`-ing filter reset; else
        the caller broadcasts the halved midpoint from :meth:`rebound`.
        """
        self.t_plus = min(self.t_plus, min_value)
        self.t_minus = max(self.t_minus, max_value)
        return self.t_plus < self.t_minus

    def rebound(self) -> int:
        """Install the new midpoint ``M2 = T+ + T-`` (which at least halves
        the tracked gap — the Theorem 3.3 mechanism); returns it."""
        self.m2 = self.t_plus + self.t_minus
        return self.m2

    def install(self, top_members: Sequence[int], v_k: int, v_k1: int) -> None:
        """A filter reset's bookkeeping: new TOP side, fresh bound/extremes.

        ``top_members`` are the k reset-sweep winners; ``v_k``/``v_k1`` the
        k-th and (k+1)-st values whose midpoint becomes the new bound.
        """
        self.sides[:] = False
        self.sides[np.asarray(top_members, dtype=np.int64)] = True
        self.refresh_cache()
        self.t_plus = int(v_k)
        self.t_minus = int(v_k1)
        self.m2 = self.t_plus + self.t_minus

    # ------------------------------------------------------------- persistence

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe capture; inverse of :meth:`from_snapshot`."""
        return {
            "schema": _FILTER_SCHEMA,
            "sides": np.packbits(self.sides).tobytes().hex(),
            "n": int(self.n),
            "m2": int(self.m2),
            "t_plus": int(self.t_plus),
            "t_minus": int(self.t_minus),
        }

    @classmethod
    def from_snapshot(cls, data: dict[str, Any]) -> "FilterState":
        """Rebuild a state captured by :meth:`snapshot` (cache refreshed)."""
        if data.get("schema") != _FILTER_SCHEMA:
            raise ConfigurationError(
                f"unsupported filter-state schema {data.get('schema')!r}"
            )
        n = int(data["n"])
        packed = np.frombuffer(bytes.fromhex(data["sides"]), dtype=np.uint8)
        sides = np.unpackbits(packed, count=n).astype(bool)
        return cls(
            sides=sides,
            m2=int(data["m2"]),
            t_plus=int(data["t_plus"]),
            t_minus=int(data["t_minus"]),
        )


def violates_stacked(rows: np.ndarray, states: Sequence[FilterState]) -> np.ndarray:
    """The stacked entry point: quietness for many sessions in one shot.

    ``rows`` is a ``(B, n)`` matrix of one pending row per session and
    ``states`` the matching filter states (all the same ``n``).  Returns a
    ``(B,)`` bool vector — ``True`` where the session's row violates a
    filter — computed with exactly the per-row comparison
    :meth:`FilterState.violates` runs, batched:

        noisy[b] = any(sides[b] & (2·row[b] < m2[b]) |
                      ~sides[b] & (2·row[b] > m2[b]))
    """
    sides = np.stack([s.sides for s in states])
    m2 = np.array([s.m2 for s in states], dtype=np.int64)[:, None]
    doubled = 2 * rows
    return ((sides & (doubled < m2)) | (~sides & (doubled > m2))).any(axis=1)


class SegmentScanner:
    """Whole-matrix lookahead with reductions cached across bound moves.

    The offline fast engine scans one fixed ``(T, n)`` matrix; unlike
    :meth:`FilterState.scan_quiet` (which re-reduces the block it is
    given), this scanner caches the per-row reductions for the current
    reset segment — they depend only on the side partition, which changes
    only at resets, **not** on ``M2``, which also moves at midpoint
    updates — and re-evaluates just the two 1-D threshold comparisons when
    the bound moves.  Cache fills lazily in geometrically growing chunks.
    """

    def __init__(self, values: np.ndarray):
        self._values = values
        self._steps = values.shape[0]
        T = values.shape[0]
        self._top_min = np.empty(T, dtype=np.int64)  # per-row min over TOP
        self._bot_max = np.empty(T, dtype=np.int64)  # per-row max over BOTTOM
        self._filled = 0
        self._chunk = _SCAN_CHUNK_MIN
        self._top_sel: slice | np.ndarray = slice(0, 0)
        self._bot_sel: slice | np.ndarray = slice(0, 0)

    def reset(self, t: int, state: FilterState) -> None:
        """Invalidate the cache: a reset at ``t`` changed the partition."""
        self._top_sel = _selector(state.top_ids)
        self._bot_sel = _selector(state.bot_ids)
        self._filled = t + 1
        self._chunk = _SCAN_CHUNK_MIN

    def _extend(self) -> None:
        t1 = min(self._steps, self._filled + self._chunk)
        block = self._values[self._filled : t1]
        self._top_min[self._filled : t1] = block[:, self._top_sel].min(axis=1)
        self._bot_max[self._filled : t1] = block[:, self._bot_sel].max(axis=1)
        self._filled = t1
        self._chunk = min(self._chunk * 4, _SCAN_CHUNK_MAX)

    def next_violation(self, start: int, m2: int) -> int:
        """First ``t >= start`` whose row violates a filter, or ``T``."""
        lo, hi = _thresholds(m2)
        T = self._steps
        pos = start
        # Compare in geometric sub-windows from ``pos`` rather than over the
        # whole cached region, so violation-dense stretches behind a long
        # filled prefix cost O(span) per event instead of O(filled - pos).
        span = _SCAN_CHUNK_MIN
        while pos < T:
            if self._filled <= pos:
                self._extend()
                continue
            end = min(self._filled, pos + span)
            window = (self._top_min[pos:end] < lo) | (self._bot_max[pos:end] > hi)
            first = int(window.argmax())
            if window[first]:
                return pos + first
            pos = end
            span = min(span * 4, _SCAN_CHUNK_MAX)
        return T


# --------------------------------------------------------------------------
# The shared round loop: Algorithm 2 with unit-cost message accounting.
# --------------------------------------------------------------------------

# Memoized per-upper-bound send-probability schedules.  Entries are computed
# with the exact expression ``2.0**r / upper_bound`` so the coin comparisons
# stay bit-identical to the faithful engine's per-round computation.
_SCHEDULES: dict[int, tuple[float, ...]] = {}


def _schedule(upper_bound: int) -> tuple[float, ...]:
    sched = _SCHEDULES.get(upper_bound)
    if sched is None:
        n_rounds = ceil_log2(upper_bound) + 1 if upper_bound > 1 else 1
        sched = tuple((2.0**r) / upper_bound for r in range(n_rounds))
        _SCHEDULES[upper_bound] = sched
    return sched


def _round_loop(
    ids: np.ndarray,
    keyed: np.ndarray,
    upper_bound: int,
    rng: np.random.Generator,
) -> tuple[int, int, int, int]:
    """One Algorithm-2 execution over ``sign``-keyed values.

    ``ids``/``keyed`` must already be in ascending-id order.  Returns
    ``(winner_id, keyed_value, node_messages, round_broadcasts)``.
    """
    sched = _schedule(upper_bound)
    rand = rng.random
    if ids.size == 1:
        # Scalar fast path: a single participant keeps flipping its coin
        # (consuming one draw per round, exactly like the array path) until
        # it sends; its first message is always an improvement broadcast.
        wid = int(ids[0])
        val = int(keyed[0])
        for p in sched:
            if rand() < p:
                return wid, val, 1, 1
        raise AssertionError("final round forces sends")
    act_ids = ids
    act_keyed = keyed
    best: int | None = None
    best_id = -1
    node_msgs = 0
    bcasts = 0
    for p in sched:
        m = act_ids.size
        if m == 0:
            break
        # The draw happens every round over the active set in ascending id
        # order — the shared randomness convention; never skip it.
        draws = rand(m)
        if p < 1.0:
            sid = (draws < p).nonzero()[0]  # integer gathers: senders are few
            s = sid.size
            if s == 0:
                continue  # nobody sent; nothing changes this round
        else:
            sid = None  # forced round: everyone still active sends
            s = m
        node_msgs += s
        if sid is None:
            j = int(act_keyed.argmax())  # first max = lowest id among senders
            round_best = int(act_keyed[j])
            round_best_id = int(act_ids[j])
        elif s == 1:
            i0 = int(sid[0])
            round_best = int(act_keyed[i0])
            round_best_id = int(act_ids[i0])
        else:
            sk = act_keyed[sid]
            j = int(sk.argmax())
            round_best = int(sk[j])
            round_best_id = int(act_ids[sid[j]])
        improved = best is None or round_best > best
        if improved:
            best = round_best
            best_id = round_best_id
        elif round_best == best and round_best_id < best_id:
            best_id = round_best_id
        if improved:
            bcasts += 1
            # The broadcast deactivates every node below the new maximum;
            # senders deactivate regardless.
            keep = act_keyed >= best
            if sid is not None:
                keep[sid] = False
            act_ids = act_ids[keep]
            act_keyed = act_keyed[keep]
        elif sid is not None:
            keep = np.ones(m, dtype=bool)
            keep[sid] = False
            act_ids = act_ids[keep]
            act_keyed = act_keyed[keep]
        else:
            break  # forced round with no improvement: nobody remains
    assert best is not None, "final round forces sends"
    return best_id, best, node_msgs, bcasts


# Unified-registry families the round loop publishes into when ``OBS.on``
# (see repro/obs): executions, node messages and improvement broadcasts
# per phase, plus a per-phase wall-time account.  Declared here, at import,
# like every other self-registering family.
_OBS_RUNS = _obs_counter(
    "repro_engine_protocol_runs_total", "Algorithm-2 protocol executions", ("phase",)
)
_OBS_MSGS = _obs_counter(
    "repro_engine_protocol_messages_total", "node messages sent in protocol rounds", ("phase",)
)
_OBS_ROUNDS = _obs_counter(
    "repro_engine_round_broadcasts_total", "improvement round broadcasts", ("phase",)
)
_OBS_SECONDS = _obs_counter(
    "repro_engine_phase_seconds_total", "wall seconds spent in protocol runs", ("phase",)
)

# Per-phase series memo: ``labels()`` validates and key-builds on every
# call, which is too slow for the per-violation path (the <3% overhead
# gate in benchmarks/bench_service.py).  Phases are a tiny fixed set, so
# resolve each once and keep the concrete series.  ``reset_metrics``
# zeroes series in place, so cached objects stay live across resets.
_OBS_PHASE_SERIES: dict[str, tuple] = {}


def _obs_phase_series(phase: str) -> tuple:
    series = _OBS_PHASE_SERIES.get(phase)
    if series is None:
        series = _OBS_PHASE_SERIES[phase] = (
            _OBS_SECONDS.labels(phase=phase),
            _OBS_RUNS.labels(phase=phase),
            _OBS_MSGS.labels(phase=phase),
            _OBS_ROUNDS.labels(phase=phase),
        )
    return series


def protocol_run(
    participants: np.ndarray,
    row: np.ndarray,
    upper: int,
    sign: int,
    phase: str,
    initiated: bool,
    counts: dict[str, int],
    rng: np.random.Generator,
    start_charge: int,
):
    """One accounted protocol execution, shared by the counting engines.

    Returns ``(winner_id, value)`` or ``None`` when there are no
    participants; message/broadcast counters accumulate into ``counts``.
    """
    if participants.size == 0:
        return None
    if initiated:
        counts["protocol_start"] += start_charge
    keyed = row[participants] if sign > 0 else -row[participants]
    if OBS.on:
        t0 = _obs_clock()
        wid, best, msgs, bcasts = _round_loop(participants, keyed, upper, rng)
        secs, runs, pmsgs, prounds = _obs_phase_series(phase)
        secs.value += _obs_clock() - t0
        runs.value += 1.0
        pmsgs.value += msgs
        prounds.value += bcasts
    else:
        wid, best, msgs, bcasts = _round_loop(participants, keyed, upper, rng)
    counts[phase] += msgs
    counts["protocol_round"] += bcasts
    return wid, sign * best


def reset_sweeps(ids: np.ndarray, row: np.ndarray, n: int, k: int, protocol_run):
    """The ``k+1`` coordinator-initiated max sweeps of a ``FilterReset``.

    Shared by the counting engines so the reset protocol semantics cannot
    drift between them (invariant I4).  Returns ``(winners, winner_vals)``
    ordered by rank.
    """
    remaining = np.ones(n, dtype=bool)
    winners: list[int] = []
    winner_vals: list[int] = []
    for _ in range(k + 1):
        part = ids[remaining]
        out = protocol_run(part, row, n, +1, "reset_protocol", True)
        assert out is not None
        winners.append(out[0])
        winner_vals.append(out[1])
        remaining[out[0]] = False
    return winners, winner_vals
