"""Vectorized re-implementation of Algorithm 1 (counting only).

Independent from :mod:`repro.core.monitor` by design: the protocol round
loop, violation detection, handler and reset logic are all re-derived here
from the paper, in flat NumPy, with plain integer counters instead of
transports.  Differential testing between the two engines (see
:mod:`repro.engine.compare`) is the strongest correctness check in this
reproduction — any semantic drift in either implementation breaks exact
equality of trajectories *and* message counts.

Randomness convention (shared with the faithful engine): every protocol
round draws ``rng.random(size=#active)`` over active participants in
ascending node-id order, including the forced final round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.protocols import ProtocolConfig
from repro.engine.registry import (
    CAP_COUNTING,
    CAP_STREAMING,
    CAP_TRAJECTORY,
    register_engine,
)
from repro.engine.results import RunResult
from repro.errors import ConfigurationError
from repro.util.deprecation import warn_deprecated
from repro.util.intmath import ceil_log2
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["VectorizedResult", "IncrementalKernel", "run_vectorized"]

# Phase keys mirrored from repro.model.message.Phase (plain strings here —
# this module deliberately avoids importing the object model).
_PHASES = (
    "violation_min",
    "violation_max",
    "handler_max",
    "handler_min",
    "protocol_start",
    "protocol_round",
    "reset_protocol",
    "reset_broadcast",
    "midpoint_broadcast",
)


@dataclass
class VectorizedResult:
    """Counters and trajectory produced by :func:`run_vectorized`."""

    n: int
    k: int
    steps: int
    topk_history: np.ndarray
    by_phase: dict[str, int] = field(default_factory=dict)
    resets: int = 0
    handler_calls: int = 0
    reset_times: list[int] = field(default_factory=list)
    handler_times: list[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Sum over all phases."""
        return sum(self.by_phase.values())


# Memoized per-upper-bound send-probability schedules.  Entries are computed
# with the exact expression ``2.0**r / upper_bound`` so the coin comparisons
# stay bit-identical to the faithful engine's per-round computation.
_SCHEDULES: dict[int, tuple[float, ...]] = {}


def _schedule(upper_bound: int) -> tuple[float, ...]:
    sched = _SCHEDULES.get(upper_bound)
    if sched is None:
        n_rounds = ceil_log2(upper_bound) + 1 if upper_bound > 1 else 1
        sched = tuple((2.0**r) / upper_bound for r in range(n_rounds))
        _SCHEDULES[upper_bound] = sched
    return sched


def _round_loop(
    ids: np.ndarray,
    keyed: np.ndarray,
    upper_bound: int,
    rng: np.random.Generator,
) -> tuple[int, int, int, int]:
    """One Algorithm-2 execution over ``sign``-keyed values.

    ``ids``/``keyed`` must already be in ascending-id order.  Returns
    ``(winner_id, keyed_value, node_messages, round_broadcasts)``.
    """
    sched = _schedule(upper_bound)
    rand = rng.random
    if ids.size == 1:
        # Scalar fast path: a single participant keeps flipping its coin
        # (consuming one draw per round, exactly like the array path) until
        # it sends; its first message is always an improvement broadcast.
        wid = int(ids[0])
        val = int(keyed[0])
        for p in sched:
            if rand() < p:
                return wid, val, 1, 1
        raise AssertionError("final round forces sends")
    act_ids = ids
    act_keyed = keyed
    best: int | None = None
    best_id = -1
    node_msgs = 0
    bcasts = 0
    for p in sched:
        m = act_ids.size
        if m == 0:
            break
        # The draw happens every round over the active set in ascending id
        # order — the shared randomness convention; never skip it.
        draws = rand(m)
        if p < 1.0:
            sid = (draws < p).nonzero()[0]  # integer gathers: senders are few
            s = sid.size
            if s == 0:
                continue  # nobody sent; nothing changes this round
        else:
            sid = None  # forced round: everyone still active sends
            s = m
        node_msgs += s
        if sid is None:
            j = int(act_keyed.argmax())  # first max = lowest id among senders
            round_best = int(act_keyed[j])
            round_best_id = int(act_ids[j])
        elif s == 1:
            i0 = int(sid[0])
            round_best = int(act_keyed[i0])
            round_best_id = int(act_ids[i0])
        else:
            sk = act_keyed[sid]
            j = int(sk.argmax())
            round_best = int(sk[j])
            round_best_id = int(act_ids[sid[j]])
        improved = best is None or round_best > best
        if improved:
            best = round_best
            best_id = round_best_id
        elif round_best == best and round_best_id < best_id:
            best_id = round_best_id
        if improved:
            bcasts += 1
            # The broadcast deactivates every node below the new maximum;
            # senders deactivate regardless.
            keep = act_keyed >= best
            if sid is not None:
                keep[sid] = False
            act_ids = act_ids[keep]
            act_keyed = act_keyed[keep]
        elif sid is not None:
            keep = np.ones(m, dtype=bool)
            keep[sid] = False
            act_ids = act_ids[keep]
            act_keyed = act_keyed[keep]
        else:
            break  # forced round with no improvement: nobody remains
    assert best is not None, "final round forces sends"
    return best_id, best, node_msgs, bcasts


def _protocol_run(
    participants: np.ndarray,
    row: np.ndarray,
    upper: int,
    sign: int,
    phase: str,
    initiated: bool,
    counts: dict[str, int],
    rng: np.random.Generator,
    start_charge: int,
):
    """One accounted protocol execution, shared by the counting engines.

    Returns ``(winner_id, value)`` or ``None`` when there are no
    participants; message/broadcast counters accumulate into ``counts``.
    """
    if participants.size == 0:
        return None
    if initiated:
        counts["protocol_start"] += start_charge
    keyed = row[participants] if sign > 0 else -row[participants]
    wid, best, msgs, bcasts = _round_loop(participants, keyed, upper, rng)
    counts[phase] += msgs
    counts["protocol_round"] += bcasts
    return wid, sign * best


def _reset_sweeps(ids: np.ndarray, row: np.ndarray, n: int, k: int, protocol_run):
    """The ``k+1`` coordinator-initiated max sweeps of a ``FilterReset``.

    Shared by the counting engines so the reset protocol semantics cannot
    drift between them (invariant I4).  Returns ``(winners, winner_vals)``
    ordered by rank.
    """
    remaining = np.ones(n, dtype=bool)
    winners: list[int] = []
    winner_vals: list[int] = []
    for _ in range(k + 1):
        part = ids[remaining]
        out = protocol_run(part, row, n, +1, "reset_protocol", True)
        assert out is not None
        winners.append(out[0])
        winner_vals.append(out[1])
        remaining[out[0]] = False
    return winners, winner_vals


class IncrementalKernel:
    """The vectorized engine in stateful, row-at-a-time form.

    One kernel is one Algorithm-1 coordinator: :meth:`step` consumes the
    next observation row and returns the current top-k ids, exactly like
    :meth:`repro.core.monitor.OnlineSession.observe` but with the counting
    engine's flat-NumPy internals.  ``_run_vectorized`` is a plain loop
    over this class, so the kernel *is* the vectorized engine — the
    differential tests that hold the batch entry point bit-identical to
    the faithful engine cover the incremental path by construction.

    The kernel is also the unit the streaming service batches: it exposes
    the pieces a caller needs to decide quietness for many sessions in one
    stacked comparison (:attr:`sides`, :attr:`m2`) plus
    :meth:`quiet_step`, which advances time without re-deriving what the
    caller already proved.  Quiet steps consume no randomness, so a
    batch-stepped kernel stays bit-identical to a per-row one.
    """

    #: Marker for batch schedulers: quietness of a step can be decided
    #: externally from ``sides``/``m2`` and applied via ``quiet_step``.
    supports_batch = True

    def __init__(
        self,
        n: int,
        k: int,
        *,
        seed=None,
        skip_redundant_min: bool = False,
        protocol: ProtocolConfig | None = None,
        track_times: bool = True,
    ):
        self.k, self.n = check_k(k, n)
        protocol = protocol or ProtocolConfig()
        if protocol.broadcast_every_round:
            raise NotImplementedError(
                "the vectorized engine implements the default broadcast-on-improvement "
                "policy only; use the faithful engine for ablation A3"
            )
        self._skip_redundant_min = skip_redundant_min
        # ``track_times=False`` keeps indefinitely-lived streaming sessions
        # O(1) in memory: the reset/handler *time lists* (one entry per
        # violation step) stay empty while the counters keep counting.
        self._track_times = track_times
        self._rng = derive_rng(seed, 0)
        self.counts = {p: 0 for p in _PHASES}
        self.resets = 0
        self.handler_calls = 0
        self.reset_times: list[int] = []
        self.handler_times: list[int] = []
        self._ids = np.arange(self.n, dtype=np.int64)
        #: Current side partition (True = TOP); read by batch schedulers.
        self.sides = np.zeros(self.n, dtype=bool)
        #: Current doubled filter bound; read by batch schedulers.
        self.m2 = 0
        self._top_ids = self._ids if self.k == self.n else self._ids[:0]
        self._t_plus = 0
        self._t_minus = 0
        self._t = -1
        self._start_charge = 1 if protocol.charge_start_broadcast else 0
        self.trivial = self.k == self.n

    # ------------------------------------------------------------------ API

    @property
    def time(self) -> int:
        """Index of the last observed step (-1 before the first)."""
        return self._t

    @property
    def topk(self) -> np.ndarray:
        """Current top-k node ids (ascending id order)."""
        return self._top_ids

    @property
    def initialized(self) -> bool:
        """Whether the t=0 initialization reset has run."""
        return self._t >= 0

    @property
    def message_count(self) -> int:
        """Total unit-cost messages over all phases so far."""
        return sum(self.counts.values())

    def step(self, row) -> np.ndarray:
        """Process one observation row; returns the (new) top-k ids.

        Validates shape and integer dtype like
        :meth:`~repro.core.monitor.OnlineSession.observe`; the first call
        plays the t=0 initialization reset.
        """
        row = np.asarray(row)
        if row.shape != (self.n,):
            raise ConfigurationError(f"row must have shape ({self.n},), got {row.shape}")
        if not np.issubdtype(row.dtype, np.integer):
            raise ConfigurationError(f"row must be integer-typed, got dtype {row.dtype}")
        return self._step(row.astype(np.int64, copy=False))

    def quiet_step(self) -> np.ndarray:
        """Advance one step the caller proved violates no filter.

        The per-step logic of :meth:`step` changes no state on a quiet row
        (and consumes no randomness), so skipping it is exact — this is the
        batched stepping path's fast lane.
        """
        self._t += 1
        return self._top_ids

    # ------------------------------------------------------- Algorithm 1

    def _step(self, row: np.ndarray) -> np.ndarray:
        """Unvalidated step: ``row`` must already be int64 of shape (n,)."""
        self._t += 1
        if self.trivial:
            return self._top_ids
        if self._t == 0:
            self._filter_reset(row)
            return self._top_ids
        doubled = 2 * row
        sides = self.sides
        below = doubled < self.m2
        above = doubled > self.m2
        viol_top = self._ids[sides & below]
        viol_bot = self._ids[~sides & above]
        if viol_top.size or viol_bot.size:
            top_bound = max(1, self.k)
            bottom_bound = max(1, self.n - self.k)
            min_out = self._protocol(viol_top, row, top_bound, -1, "violation_min", False)
            max_out = self._protocol(viol_bot, row, bottom_bound, +1, "violation_max", False)
            self.handler_calls += 1
            if self._track_times:
                self.handler_times.append(self._t)
            if max_out is None:
                max_out = self._protocol(self._ids[~sides], row, bottom_bound, +1, "handler_max", True)
            elif not (self._skip_redundant_min and min_out is not None):
                min_out = self._protocol(self._ids[sides], row, top_bound, -1, "handler_min", True)
            assert min_out is not None and max_out is not None
            self._t_plus = min(self._t_plus, min_out[1])
            self._t_minus = max(self._t_minus, max_out[1])
            if self._t_plus < self._t_minus:
                self._filter_reset(row)
                if self._track_times:
                    self.handler_times.pop()  # reclassified as a reset step
            else:
                self.m2 = self._t_plus + self._t_minus
                self.counts["midpoint_broadcast"] += 1
        return self._top_ids

    def _protocol(self, participants, row, upper, sign, phase, initiated):
        return _protocol_run(
            participants, row, upper, sign, phase, initiated,
            self.counts, self._rng, self._start_charge,
        )

    def _filter_reset(self, row: np.ndarray) -> None:
        self.resets += 1
        if self._track_times:
            self.reset_times.append(self._t)
        winners, winner_vals = _reset_sweeps(self._ids, row, self.n, self.k, self._protocol)
        self.counts["reset_broadcast"] += 1
        self.sides[:] = False
        self.sides[winners[: self.k]] = True
        self._top_ids = np.flatnonzero(self.sides)
        self._t_plus = winner_vals[self.k - 1]
        self._t_minus = winner_vals[self.k]
        self.m2 = self._t_plus + self._t_minus


def _run_vectorized(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> VectorizedResult:
    """Run Algorithm 1 over a ``(T, n)`` matrix with array-only internals."""
    values = check_matrix(values)
    T, n = values.shape
    kernel = IncrementalKernel(
        n, k, seed=seed, skip_redundant_min=skip_redundant_min, protocol=protocol
    )
    history = np.empty((T, kernel.k), dtype=np.int64)
    for t in range(T):
        history[t] = kernel._step(values[t])
    return VectorizedResult(
        n=kernel.n,
        k=kernel.k,
        steps=T,
        topk_history=history,
        by_phase=kernel.counts,
        resets=kernel.resets,
        handler_calls=kernel.handler_calls,
        reset_times=kernel.reset_times,
        handler_times=kernel.handler_times,
    )


def run_vectorized(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> VectorizedResult:
    """Deprecated entry point; use ``repro.run(RunSpec(..., engine="vectorized"))``."""
    warn_deprecated("run_vectorized", 'repro.run(RunSpec(..., engine="vectorized"))')
    return _run_vectorized(
        values, k, seed=seed, skip_redundant_min=skip_redundant_min, protocol=protocol
    )


def check_counting_config(config, engine: str) -> None:
    """Reject :class:`~repro.core.monitor.MonitorConfig` requests a counting
    engine cannot honour.  ``collect_events``/``track_series`` defaults pass
    silently (absent capabilities, not errors); explicit instrumentation or
    ablation requests fail loudly and point at the faithful engine."""
    for flag in ("audit", "always_reset", "record_messages", "track_series"):
        if getattr(config, flag):
            raise ConfigurationError(
                f"the {engine!r} engine does not support {flag}=True; "
                f"use engine='faithful' for instrumented or ablation runs"
            )


def _engine_runner(values: np.ndarray, k: int, *, seed, config) -> RunResult:
    check_counting_config(config, "vectorized")
    result = _run_vectorized(
        values,
        k,
        seed=seed,
        skip_redundant_min=config.skip_redundant_min,
        protocol=config.protocol,
    )
    return RunResult.from_counting(result, engine="vectorized")


def _session_factory(n: int, k: int, *, seed=None, config=None) -> IncrementalKernel:
    if config is None:
        from repro.core.monitor import MonitorConfig

        config = MonitorConfig()
    check_counting_config(config, "vectorized")
    return IncrementalKernel(
        n, k, seed=seed,
        skip_redundant_min=config.skip_redundant_min,
        protocol=config.protocol,
        track_times=False,  # streaming sessions are indefinitely lived
    )


register_engine(
    "vectorized",
    description="flat-NumPy per-step counting engine: trajectory + per-phase counters",
    capabilities={CAP_TRAJECTORY, CAP_COUNTING, CAP_STREAMING},
    runner=_engine_runner,
    session_factory=_session_factory,
)
