"""Vectorized re-implementation of Algorithm 1 (counting only).

Independent from :mod:`repro.core.monitor` by design: the protocol round
loop, violation detection, handler and reset logic are all re-derived here
from the paper, in flat NumPy, with plain integer counters instead of
transports.  Differential testing between the two engines (see
:mod:`repro.engine.compare`) is the strongest correctness check in this
reproduction — any semantic drift in either implementation breaks exact
equality of trajectories *and* message counts.

Randomness convention (shared with the faithful engine): every protocol
round draws ``rng.random(size=#active)`` over active participants in
ascending node-id order, including the forced final round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.protocols import ProtocolConfig
from repro.util.intmath import ceil_log2
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["VectorizedResult", "run_vectorized"]

# Phase keys mirrored from repro.model.message.Phase (plain strings here —
# this module deliberately avoids importing the object model).
_PHASES = (
    "violation_min",
    "violation_max",
    "handler_max",
    "handler_min",
    "protocol_start",
    "protocol_round",
    "reset_protocol",
    "reset_broadcast",
    "midpoint_broadcast",
)


@dataclass
class VectorizedResult:
    """Counters and trajectory produced by :func:`run_vectorized`."""

    n: int
    k: int
    steps: int
    topk_history: np.ndarray
    by_phase: dict[str, int] = field(default_factory=dict)
    resets: int = 0
    handler_calls: int = 0
    reset_times: list[int] = field(default_factory=list)
    handler_times: list[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Sum over all phases."""
        return sum(self.by_phase.values())


def _round_loop(
    ids: np.ndarray,
    keyed: np.ndarray,
    upper_bound: int,
    rng: np.random.Generator,
) -> tuple[int, int, int, int]:
    """One Algorithm-2 execution over ``sign``-keyed values.

    ``ids``/``keyed`` must already be in ascending-id order.  Returns
    ``(winner_id, keyed_value, node_messages, round_broadcasts)``.
    """
    m = ids.size
    n_rounds = ceil_log2(upper_bound) + 1 if upper_bound > 1 else 1
    active = np.ones(m, dtype=bool)
    announced: int | None = None
    best: int | None = None
    best_id = -1
    node_msgs = 0
    bcasts = 0
    for r in range(n_rounds):
        if announced is not None:
            active &= keyed >= announced
        if not active.any():
            break
        p = min(1.0, (2.0**r) / upper_bound)
        idx = np.flatnonzero(active)
        senders = idx[rng.random(idx.size) < p]
        if senders.size:
            node_msgs += int(senders.size)
            sk = keyed[senders]
            round_best = int(sk.max())
            round_best_id = int(ids[senders[sk == round_best][0]])
            improved = best is None or round_best > best
            if improved:
                best = round_best
                best_id = round_best_id
            elif round_best == best and round_best_id < best_id:
                best_id = round_best_id
            if improved:
                bcasts += 1
                announced = best
            active[senders] = False
    assert best is not None, "final round forces sends"
    return best_id, best, node_msgs, bcasts


def run_vectorized(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> VectorizedResult:
    """Run Algorithm 1 over a ``(T, n)`` matrix with array-only internals."""
    values = check_matrix(values)
    T, n = values.shape
    k, n = check_k(k, n)
    protocol = protocol or ProtocolConfig()
    if protocol.broadcast_every_round:
        raise NotImplementedError(
            "the vectorized engine implements the default broadcast-on-improvement "
            "policy only; use the faithful engine for ablation A3"
        )
    rng = derive_rng(seed, 0)
    counts = {p: 0 for p in _PHASES}
    history = np.empty((T, k), dtype=np.int64)
    result = VectorizedResult(n=n, k=k, steps=T, topk_history=history, by_phase=counts)

    if k == n:
        history[:] = np.arange(n, dtype=np.int64)[None, :]
        return result

    ids = np.arange(n, dtype=np.int64)
    sides = np.zeros(n, dtype=bool)
    m2 = 0
    t_plus = 0
    t_minus = 0
    start_charge = 1 if protocol.charge_start_broadcast else 0

    def protocol_run(participants: np.ndarray, row: np.ndarray, upper: int, sign: int, phase: str, initiated: bool):
        nonlocal counts
        if participants.size == 0:
            return None
        if initiated:
            counts["protocol_start"] += start_charge
        keyed = sign * row[participants]
        wid, best, msgs, bcasts = _round_loop(participants, keyed, upper, rng)
        counts[phase] += msgs
        counts["protocol_round"] += bcasts
        return wid, sign * best

    def filter_reset(row: np.ndarray, t: int) -> None:
        nonlocal m2, t_plus, t_minus
        result.resets += 1
        result.reset_times.append(t)
        remaining = np.ones(n, dtype=bool)
        winner_vals: list[int] = []
        winners: list[int] = []
        for _ in range(k + 1):
            part = ids[remaining]
            out = protocol_run(part, row, n, +1, "reset_protocol", True)
            assert out is not None
            winners.append(out[0])
            winner_vals.append(out[1])
            remaining[out[0]] = False
        counts["reset_broadcast"] += 1
        sides[:] = False
        sides[winners[:k]] = True
        t_plus = winner_vals[k - 1]
        t_minus = winner_vals[k]
        m2 = t_plus + t_minus

    # t = 0 initialization.
    filter_reset(values[0], 0)
    history[0] = np.flatnonzero(sides)

    bottom_bound = max(1, n - k)
    top_bound = max(1, k)
    for t in range(1, T):
        row = values[t]
        doubled = 2 * row
        below = doubled < m2
        above = doubled > m2
        viol_top = ids[sides & below]
        viol_bot = ids[~sides & above]
        if viol_top.size or viol_bot.size:
            min_out = protocol_run(viol_top, row, top_bound, -1, "violation_min", False)
            max_out = protocol_run(viol_bot, row, bottom_bound, +1, "violation_max", False)
            result.handler_calls += 1
            result.handler_times.append(t)
            if max_out is None:
                max_out = protocol_run(ids[~sides], row, bottom_bound, +1, "handler_max", True)
            elif not (skip_redundant_min and min_out is not None):
                min_out = protocol_run(ids[sides], row, top_bound, -1, "handler_min", True)
            assert min_out is not None and max_out is not None
            t_plus = min(t_plus, min_out[1])
            t_minus = max(t_minus, max_out[1])
            if t_plus < t_minus:
                filter_reset(row, t)
                result.handler_times.pop()  # reclassified as a reset step
            else:
                m2 = t_plus + t_minus
                counts["midpoint_broadcast"] += 1
        history[t] = np.flatnonzero(sides)
    return result
