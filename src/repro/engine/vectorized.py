"""Vectorized re-implementation of Algorithm 1 (counting only).

Independent from :mod:`repro.core.monitor` by design: the protocol round
loop, violation detection, handler and reset logic are all re-derived here
from the paper, in flat NumPy, with plain integer counters instead of
transports.  Differential testing between the two engines (see
:mod:`repro.engine.compare`) is the strongest correctness check in this
reproduction — any semantic drift in either implementation breaks exact
equality of trajectories *and* message counts.

The filter state itself — partition, doubled bound, quietness decision —
lives one layer down in :mod:`repro.engine.kernel` (:class:`FilterState`),
which this module shares with the faithful monitor, the fast engine, and
the streaming service: the ``2·v`` vs ``M2`` comparison is implemented
exactly once, there.

Randomness convention (shared with the faithful engine): every protocol
round draws ``rng.random(size=#active)`` over active participants in
ascending node-id order, including the forced final round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.protocols import ProtocolConfig
from repro.engine.kernel import PHASES as _PHASES
from repro.engine.kernel import (
    FilterState,
    protocol_run as _protocol_run,
    reset_sweeps as _reset_sweeps,
)
from repro.engine.registry import (
    CAP_CHECKPOINT,
    CAP_COUNTING,
    CAP_STREAMING,
    CAP_TRAJECTORY,
    register_engine,
)
from repro.engine.results import RunResult
from repro.errors import ConfigurationError
from repro.util.deprecation import warn_deprecated
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["VectorizedResult", "IncrementalKernel", "run_vectorized"]

#: Schema tag for :meth:`IncrementalKernel.snapshot` payloads.
KERNEL_SCHEMA_VERSION = 1


@dataclass
class VectorizedResult:
    """Counters and trajectory produced by :func:`run_vectorized`."""

    n: int
    k: int
    steps: int
    topk_history: np.ndarray
    by_phase: dict[str, int] = field(default_factory=dict)
    resets: int = 0
    handler_calls: int = 0
    reset_times: list[int] = field(default_factory=list)
    handler_times: list[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Sum over all phases."""
        return sum(self.by_phase.values())


class IncrementalKernel:
    """The vectorized engine in stateful, row-at-a-time form.

    One kernel is one Algorithm-1 coordinator: :meth:`step` consumes the
    next observation row and returns the current top-k ids, exactly like
    :meth:`repro.core.monitor.OnlineSession.observe` but with the counting
    engine's flat-NumPy internals.  ``_run_vectorized`` is a plain loop
    over this class, so the kernel *is* the vectorized engine — the
    differential tests that hold the batch entry point bit-identical to
    the faithful engine cover the incremental path by construction.

    The kernel is also the unit the streaming service batches and
    checkpoints: it exposes its :class:`~repro.engine.kernel.FilterState`
    as :attr:`filter` (so a caller can decide quietness for many sessions
    in one stacked comparison and apply it via :meth:`quiet_step`), drains
    proven-quiet *blocks* via :meth:`observe_many` (one
    :meth:`~repro.engine.kernel.FilterState.scan_quiet` lookahead instead
    of row-at-a-time sweeps), and round-trips its full state through
    :meth:`snapshot` / :meth:`from_snapshot`.  Quiet steps consume no
    randomness, so batched or lookahead stepping stays bit-identical to a
    per-row loop.
    """

    #: Marker for batch schedulers: quietness of a step can be decided
    #: externally from :attr:`filter` and applied via ``quiet_step``.
    supports_batch = True

    #: Marker for deep-inbox schedulers: ``observe_many`` skips quiet
    #: prefixes with a block scan (exactness guaranteed by the kernel).
    supports_lookahead = True

    def __init__(
        self,
        n: int,
        k: int,
        *,
        seed=None,
        skip_redundant_min: bool = False,
        protocol: ProtocolConfig | None = None,
        track_times: bool = True,
    ):
        self.k, self.n = check_k(k, n)
        protocol = protocol or ProtocolConfig()
        if protocol.broadcast_every_round:
            raise NotImplementedError(
                "the vectorized engine implements the default broadcast-on-improvement "
                "policy only; use the faithful engine for ablation A3"
            )
        self._skip_redundant_min = skip_redundant_min
        # ``track_times=False`` keeps indefinitely-lived streaming sessions
        # O(1) in memory: the reset/handler *time lists* (one entry per
        # violation step) stay empty while the counters keep counting.
        self._track_times = track_times
        self._rng = derive_rng(seed, 0)
        self.counts = {p: 0 for p in _PHASES}
        self.resets = 0
        self.handler_calls = 0
        # Diagnostics, deliberately not in the checkpoint codec: restored
        # kernels always run track_times=False (streaming sessions), so the
        # violation-time lists would be empty either way.
        self.reset_times: list[int] = []  # reprolint: disable=R5
        self.handler_times: list[int] = []  # reprolint: disable=R5
        # Derived from n / k — rebuilt by __init__ on restore.
        self._ids = np.arange(self.n, dtype=np.int64)  # reprolint: disable=R5
        self.trivial = self.k == self.n  # reprolint: disable=R5
        #: The shared filter state (partition + doubled bound + extremes);
        #: read by batch schedulers and the lookahead scan.
        self.filter = FilterState.blank(self.n, all_top=self.trivial)
        self._t = -1
        # Persisted under the renamed key config.charge_start_broadcast.
        self._start_charge = 1 if protocol.charge_start_broadcast else 0  # reprolint: disable=R5

    # ------------------------------------------------------------------ API

    @property
    def time(self) -> int:
        """Index of the last observed step (-1 before the first)."""
        return self._t

    @property
    def topk(self) -> np.ndarray:
        """Current top-k node ids (ascending id order)."""
        return self.filter.top_ids

    @property
    def sides(self) -> np.ndarray:
        """Current side partition (True = TOP) — ``filter.sides``."""
        return self.filter.sides

    @property
    def m2(self) -> int:
        """Current doubled filter bound — ``filter.m2``."""
        return self.filter.m2

    @property
    def initialized(self) -> bool:
        """Whether the t=0 initialization reset has run."""
        return self._t >= 0

    @property
    def message_count(self) -> int:
        """Total unit-cost messages over all phases so far."""
        return sum(self.counts.values())

    def step(self, row) -> np.ndarray:
        """Process one observation row; returns the (new) top-k ids.

        Validates shape and integer dtype like
        :meth:`~repro.core.monitor.OnlineSession.observe`; the first call
        plays the t=0 initialization reset.
        """
        row = np.asarray(row)
        if row.shape != (self.n,):
            raise ConfigurationError(f"row must have shape ({self.n},), got {row.shape}")
        if not np.issubdtype(row.dtype, np.integer):
            raise ConfigurationError(f"row must be integer-typed, got dtype {row.dtype}")
        return self._step(row.astype(np.int64, copy=False))

    def quiet_step(self) -> np.ndarray:
        """Advance one step the caller proved violates no filter.

        The per-step logic of :meth:`step` changes no state on a quiet row
        (and consumes no randomness), so skipping it is exact — this is the
        batched stepping path's fast lane.
        """
        self._t += 1
        return self.filter.top_ids

    def observe_many(self, rows) -> np.ndarray:
        """Process a block of rows with quiet-prefix lookahead; returns the
        ``(B, k)`` top-k history over the block.

        Between communication events the filters are static, so one
        :meth:`~repro.engine.kernel.FilterState.scan_quiet` block scan
        finds the next violating row and everything before it advances as
        quiet steps — the deep-inbox fast lane of the streaming service.
        Bit-identical to calling :meth:`step` per row (quiet steps consume
        no randomness).
        """
        rows = np.asarray(rows)
        if rows.ndim != 2 or rows.shape[1] != self.n:
            raise ConfigurationError(
                f"rows must be a 2-D (B, {self.n}) array, got shape {rows.shape}"
            )
        if not np.issubdtype(rows.dtype, np.integer):
            raise ConfigurationError(f"rows must be integer-typed, got dtype {rows.dtype}")
        rows = rows.astype(np.int64, copy=False)
        B = rows.shape[0]
        history = np.empty((B, self.k), dtype=np.int64)
        if self.trivial:
            self._t += B
            history[:] = self.filter.top_ids
            return history
        t = 0
        if not self.initialized and B:
            history[0] = self._step(rows[0])
            t = 1
        while t < B:
            v = self.filter.scan_quiet(rows, t)
            if v > t:  # quiet prefix: the partition is frozen, fill by slice
                history[t:v] = self.filter.top_ids
                self._t += v - t
            if v == B:
                break
            history[v] = self._step(rows[v])
            t = v + 1
        return history

    # ------------------------------------------------------- Algorithm 1

    def _step(self, row: np.ndarray) -> np.ndarray:
        """Unvalidated step: ``row`` must already be int64 of shape (n,)."""
        self._t += 1
        state = self.filter
        if self.trivial:
            return state.top_ids
        if self._t == 0:
            self._filter_reset(row)
            return state.top_ids
        if state.violates(row):
            viol_top, viol_bot = state.violators(row)
            top_bound = max(1, self.k)
            bottom_bound = max(1, self.n - self.k)
            min_out = self._protocol(viol_top, row, top_bound, -1, "violation_min", False)
            max_out = self._protocol(viol_bot, row, bottom_bound, +1, "violation_max", False)
            self.handler_calls += 1
            if self._track_times:
                self.handler_times.append(self._t)
            if max_out is None:
                max_out = self._protocol(state.bot_ids, row, bottom_bound, +1, "handler_max", True)
            elif not (self._skip_redundant_min and min_out is not None):
                min_out = self._protocol(state.top_ids, row, top_bound, -1, "handler_min", True)
            assert min_out is not None and max_out is not None
            if state.absorb(min_out[1], max_out[1]):
                self._filter_reset(row)
                if self._track_times:
                    self.handler_times.pop()  # reclassified as a reset step
            else:
                state.rebound()
                self.counts["midpoint_broadcast"] += 1
        return state.top_ids

    def _protocol(self, participants, row, upper, sign, phase, initiated):
        return _protocol_run(
            participants, row, upper, sign, phase, initiated,
            self.counts, self._rng, self._start_charge,
        )

    def _filter_reset(self, row: np.ndarray) -> None:
        self.resets += 1
        if self._track_times:
            self.reset_times.append(self._t)
        winners, winner_vals = _reset_sweeps(self._ids, row, self.n, self.k, self._protocol)
        self.counts["reset_broadcast"] += 1
        self.filter.install(winners[: self.k], winner_vals[self.k - 1], winner_vals[self.k])

    # ---------------------------------------------------------- persistence

    def snapshot(self) -> dict[str, Any]:
        """Capture the kernel's full algorithmic state as a plain dict.

        JSON-compatible; includes the RNG state, so a restored kernel's
        future coin flips (hence message counts) are bit-identical to one
        that never stopped.  Inverse of :meth:`from_snapshot`; registered
        with the engine registry as the ``vectorized`` session codec.
        """
        from repro.core.checkpoint import encode_rng_state

        return {
            "schema": KERNEL_SCHEMA_VERSION,
            "kind": "incremental_kernel",
            "n": self.n,
            "k": self.k,
            "t": self._t,
            "filter": self.filter.snapshot(),
            "counts": dict(self.counts),
            "resets": self.resets,
            "handler_calls": self.handler_calls,
            "rng_state": encode_rng_state(self._rng),
            "config": {
                "skip_redundant_min": self._skip_redundant_min,
                "charge_start_broadcast": bool(self._start_charge),
            },
        }

    @classmethod
    def from_snapshot(cls, state: dict[str, Any]) -> "IncrementalKernel":
        """Reconstruct a kernel captured by :meth:`snapshot`."""
        from repro.core.checkpoint import decode_rng_state

        if state.get("schema") != KERNEL_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported kernel checkpoint schema {state.get('schema')!r} "
                f"(expected {KERNEL_SCHEMA_VERSION})"
            )
        kernel = cls(
            int(state["n"]),
            int(state["k"]),
            seed=0,
            skip_redundant_min=bool(state["config"]["skip_redundant_min"]),
            protocol=ProtocolConfig(
                charge_start_broadcast=bool(state["config"]["charge_start_broadcast"])
            ),
            track_times=False,  # restored kernels serve streaming sessions
        )
        kernel._t = int(state["t"])
        kernel.filter = FilterState.from_snapshot(state["filter"])
        kernel.counts = {p: int(state["counts"].get(p, 0)) for p in _PHASES}
        kernel.resets = int(state["resets"])
        kernel.handler_calls = int(state["handler_calls"])
        kernel._rng = decode_rng_state(state["rng_state"])
        return kernel


def _run_vectorized(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> VectorizedResult:
    """Run Algorithm 1 over a ``(T, n)`` matrix with array-only internals."""
    values = check_matrix(values)
    T, n = values.shape
    kernel = IncrementalKernel(
        n, k, seed=seed, skip_redundant_min=skip_redundant_min, protocol=protocol
    )
    history = np.empty((T, kernel.k), dtype=np.int64)
    for t in range(T):
        history[t] = kernel._step(values[t])
    return VectorizedResult(
        n=kernel.n,
        k=kernel.k,
        steps=T,
        topk_history=history,
        by_phase=kernel.counts,
        resets=kernel.resets,
        handler_calls=kernel.handler_calls,
        reset_times=kernel.reset_times,
        handler_times=kernel.handler_times,
    )


def run_vectorized(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> VectorizedResult:
    """Deprecated entry point; use ``repro.run(RunSpec(..., engine="vectorized"))``."""
    warn_deprecated("run_vectorized", 'repro.run(RunSpec(..., engine="vectorized"))')
    return _run_vectorized(
        values, k, seed=seed, skip_redundant_min=skip_redundant_min, protocol=protocol
    )


def check_counting_config(config, engine: str) -> None:
    """Reject :class:`~repro.core.monitor.MonitorConfig` requests a counting
    engine cannot honour.  ``collect_events``/``track_series`` defaults pass
    silently (absent capabilities, not errors); explicit instrumentation or
    ablation requests fail loudly and point at the faithful engine."""
    for flag in ("audit", "always_reset", "record_messages", "track_series"):
        if getattr(config, flag):
            raise ConfigurationError(
                f"the {engine!r} engine does not support {flag}=True; "
                f"use engine='faithful' for instrumented or ablation runs"
            )


def _engine_runner(values: np.ndarray, k: int, *, seed, config) -> RunResult:
    check_counting_config(config, "vectorized")
    result = _run_vectorized(
        values,
        k,
        seed=seed,
        skip_redundant_min=config.skip_redundant_min,
        protocol=config.protocol,
    )
    return RunResult.from_counting(result, engine="vectorized")


def _session_factory(n: int, k: int, *, seed=None, config=None) -> IncrementalKernel:
    if config is None:
        from repro.core.monitor import MonitorConfig

        config = MonitorConfig()
    check_counting_config(config, "vectorized")
    return IncrementalKernel(
        n, k, seed=seed,
        skip_redundant_min=config.skip_redundant_min,
        protocol=config.protocol,
        track_times=False,  # streaming sessions are indefinitely lived
    )


def _session_snapshot(stepper: IncrementalKernel) -> dict[str, Any]:
    return stepper.snapshot()


register_engine(
    "vectorized",
    description="flat-NumPy per-step counting engine: trajectory + per-phase counters",
    capabilities={CAP_TRAJECTORY, CAP_COUNTING, CAP_STREAMING, CAP_CHECKPOINT},
    runner=_engine_runner,
    session_factory=_session_factory,
    session_snapshot=_session_snapshot,
    session_restore=IncrementalKernel.from_snapshot,
)
