"""Segment-skipping event-driven engine for Algorithm 1.

The paper's whole point is that filter-based monitoring makes almost every
step *quiet*: no node's value leaves its filter interval, so no message is
exchanged and the coordinator's state — the TOP/BOTTOM partition and the
doubled bound ``M2`` — does not change.  The per-step engines
(:mod:`repro.core.monitor`, :mod:`repro.engine.vectorized`) nevertheless pay
a full Python iteration with O(n) NumPy work on every one of those steps.

This engine exploits the **segment-skip invariant**: between two
communication events the filters are completely static, so whether step
``t`` violates is a pure function of the input row.  The quietness
comparison itself, its folded integer thresholds, and the cached-reduction
lookahead all live in :mod:`repro.engine.kernel`
(:class:`~repro.engine.kernel.FilterState`,
:class:`~repro.engine.kernel.SegmentScanner`); this module is the event
loop on top: after every event it asks the scanner for the next violating
step, fills ``topk_history`` for the skipped quiet segment by slice
assignment from the cached top-k id vector, and runs per-step protocol
logic **only** at violation times.

Equality guarantee: the protocol round loop is the shared one from
:mod:`repro.engine.kernel` and the randomness convention (one
``rng.random(size=#active)`` draw per round over ascending ids, including
the forced final round) is untouched, so for equal seeds this engine
produces bit-identical top-k trajectories, reset/handler times and
per-phase message counts to both other engines.  ``differential_check``
(:mod:`repro.engine.compare`) enforces this three ways.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import ProtocolConfig
from repro.engine.kernel import (
    PHASES as _PHASES,
    FilterState,
    SegmentScanner,
    protocol_run as _protocol_run,
    reset_sweeps as _reset_sweeps,
)
from repro.engine.registry import CAP_COUNTING, CAP_TRAJECTORY, register_engine
from repro.engine.results import RunResult
from repro.engine.vectorized import VectorizedResult, check_counting_config
from repro.obs.registry import OBS, counter as _obs_counter
from repro.util.deprecation import warn_deprecated
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["FastResult", "run_fast"]

# The fast engine emits the same counters/trajectory container as the
# vectorized engine — differential comparison is field-by-field trivial.
FastResult = VectorizedResult

# Registry families (repro/obs): the segment-skip hit rate is
# skipped/(skipped+violation) over these two series; published once per
# run, so the event loop itself carries no instrumentation cost.
_OBS_SEG_ROWS = _obs_counter(
    "repro_engine_segment_rows_total",
    "rows classified by the fast engine's segment scanner",
    ("outcome",),
)
_OBS_VIOLATIONS = _obs_counter(
    "repro_engine_violations_total", "violation events handled by the fast engine"
)


def _run_fast(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> FastResult:
    """Run Algorithm 1 over a ``(T, n)`` matrix, skipping quiet segments.

    Drop-in replacement for the vectorized engine with identical output for
    identical arguments; expected to dominate it whenever violation steps
    are sparse (the regime the algorithm targets).
    """
    values = check_matrix(values)
    T, n = values.shape
    k, n = check_k(k, n)
    protocol = protocol or ProtocolConfig()
    if protocol.broadcast_every_round:
        raise NotImplementedError(
            "the fast engine implements the default broadcast-on-improvement "
            "policy only; use the faithful engine for ablation A3"
        )
    rng = derive_rng(seed, 0)
    counts = {p: 0 for p in _PHASES}
    history = np.empty((T, k), dtype=np.int64)
    result = FastResult(n=n, k=k, steps=T, topk_history=history, by_phase=counts)

    if k == n:
        history[:] = np.arange(n, dtype=np.int64)[None, :]
        return result

    ids = np.arange(n, dtype=np.int64)
    state = FilterState.blank(n)
    start_charge = 1 if protocol.charge_start_broadcast else 0
    scanner = SegmentScanner(values)

    def protocol_run(participants: np.ndarray, row: np.ndarray, upper: int, sign: int, phase: str, initiated: bool):
        return _protocol_run(participants, row, upper, sign, phase, initiated, counts, rng, start_charge)

    def filter_reset(row: np.ndarray, t: int) -> None:
        result.resets += 1
        result.reset_times.append(t)
        winners, winner_vals = _reset_sweeps(ids, row, n, k, protocol_run)
        counts["reset_broadcast"] += 1
        state.install(winners[:k], winner_vals[k - 1], winner_vals[k])
        scanner.reset(t, state)

    # t = 0 initialization.
    filter_reset(values[0], 0)
    history[0] = state.top_ids

    bottom_bound = max(1, n - k)
    top_bound = max(1, k)
    t = 1
    while t < T:
        v = scanner.next_violation(t, state.m2)
        if v > t:  # quiet segment: the partition is frozen, fill by slice
            history[t:v] = state.top_ids
        if v == T:
            break
        row = values[v]
        viol_top, viol_bot = state.violators(row)
        min_out = protocol_run(viol_top, row, top_bound, -1, "violation_min", False)
        max_out = protocol_run(viol_bot, row, bottom_bound, +1, "violation_max", False)
        result.handler_calls += 1
        result.handler_times.append(v)
        if max_out is None:
            max_out = protocol_run(state.bot_ids, row, bottom_bound, +1, "handler_max", True)
        elif not (skip_redundant_min and min_out is not None):
            min_out = protocol_run(state.top_ids, row, top_bound, -1, "handler_min", True)
        assert min_out is not None and max_out is not None
        if state.absorb(min_out[1], max_out[1]):
            filter_reset(row, v)
            result.handler_times.pop()  # reclassified as a reset step
        else:
            state.rebound()
            counts["midpoint_broadcast"] += 1
        history[v] = state.top_ids
        t = v + 1
    if OBS.on:
        # Row 0 is the initialization reset; every other non-event row was
        # skipped as part of a quiet segment.
        _OBS_SEG_ROWS.labels(outcome="violation").inc(result.handler_calls + 1)
        _OBS_SEG_ROWS.labels(outcome="skipped").inc(T - 1 - result.handler_calls)
        _OBS_VIOLATIONS.inc(result.handler_calls)
    return result


def run_fast(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> FastResult:
    """Deprecated entry point; use ``repro.run(RunSpec(..., engine="fast"))``."""
    warn_deprecated("run_fast", 'repro.run(RunSpec(..., engine="fast"))')
    return _run_fast(
        values, k, seed=seed, skip_redundant_min=skip_redundant_min, protocol=protocol
    )


def _engine_runner(values: np.ndarray, k: int, *, seed, config) -> RunResult:
    check_counting_config(config, "fast")
    result = _run_fast(
        values,
        k,
        seed=seed,
        skip_redundant_min=config.skip_redundant_min,
        protocol=config.protocol,
    )
    return RunResult.from_counting(result, engine="fast")


register_engine(
    "fast",
    description="segment-skipping event-driven counting engine (quiet steps cost ~0)",
    capabilities={CAP_TRAJECTORY, CAP_COUNTING},
    runner=_engine_runner,
)
