"""Segment-skipping event-driven engine for Algorithm 1.

The paper's whole point is that filter-based monitoring makes almost every
step *quiet*: no node's value leaves its filter interval, so no message is
exchanged and the coordinator's state — the TOP/BOTTOM partition and the
doubled bound ``M2`` — does not change.  The per-step engines
(:mod:`repro.core.monitor`, :mod:`repro.engine.vectorized`) nevertheless pay
a full Python iteration with O(n) NumPy work on every one of those steps.

This engine exploits the **segment-skip invariant**: between two
communication events the filters are completely static, so whether step
``t`` violates is a pure function of the input row — ``t`` violates iff

    min over the TOP side of ``2 * values[t]``    <  ``M2``,  or
    max over the BOTTOM side of ``2 * values[t]`` >  ``M2``.

Both reductions vectorize over *time*: after every event the engine scans
the remaining ``(T - t, n)`` block with whole-array row reductions
(in geometrically growing chunks, so churn-heavy inputs do not pay for
lookahead they never use), jumps straight to the next violating step, and
fills ``topk_history`` for the skipped quiet segment by slice assignment
from the cached top-k id vector.  Per-step protocol logic runs **only** at
violation times.

Equality guarantee: the protocol round loop is imported from
:mod:`repro.engine.vectorized` and the randomness convention (one
``rng.random(size=#active)`` draw per round over ascending ids, including
the forced final round) is untouched, so for equal seeds this engine
produces bit-identical top-k trajectories, reset/handler times and
per-phase message counts to both other engines.  ``differential_check``
(:mod:`repro.engine.compare`) enforces this three ways.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocols import ProtocolConfig
from repro.engine.registry import CAP_COUNTING, CAP_TRAJECTORY, register_engine
from repro.engine.results import RunResult
from repro.engine.vectorized import (
    _PHASES,
    VectorizedResult,
    _protocol_run,
    _reset_sweeps,
    check_counting_config,
)
from repro.util.deprecation import warn_deprecated
from repro.util.seeding import derive_rng
from repro.util.validation import check_k, check_matrix

__all__ = ["FastResult", "run_fast"]

# The fast engine emits the same counters/trajectory container as the
# vectorized engine — differential comparison is field-by-field trivial.
FastResult = VectorizedResult

# Chunked lookahead: start small so churn-heavy inputs only ever reduce a
# few rows past the current step, grow geometrically so long quiet segments
# are covered in O(log(segment)) whole-array reductions.
_SCAN_CHUNK_MIN = 16
_SCAN_CHUNK_MAX = 8192


class _SegmentScanner:
    """Finds the next filter-violating step with O(n)-per-row work *once*.

    The key observation: the per-row reductions ``min over TOP`` / ``max
    over BOTTOM`` depend only on the side partition, which changes only at
    resets — **not** on the bound ``M2``, which also changes at midpoint
    updates.  So the scanner caches the per-row reductions for the current
    reset segment (filled lazily in geometrically growing chunks) and
    re-evaluates only the two 1-D threshold comparisons when ``M2`` moves.
    """

    def __init__(self, values: np.ndarray):
        self._values = values
        self._steps = values.shape[0]
        T = values.shape[0]
        self._top_min = np.empty(T, dtype=np.int64)  # per-row min over TOP
        self._bot_max = np.empty(T, dtype=np.int64)  # per-row max over BOTTOM
        self._filled = 0
        self._chunk = _SCAN_CHUNK_MIN
        self._top_sel: slice | np.ndarray = slice(0, 0)
        self._bot_sel: slice | np.ndarray = slice(0, 0)

    @staticmethod
    def _selector(ids: np.ndarray):
        """A column selector for ``ids``: a view-producing slice when the
        ids are contiguous (common when node base levels order the top-k),
        else the index array itself (fancy-indexed gather)."""
        if int(ids[-1]) - int(ids[0]) + 1 == ids.size:
            return slice(int(ids[0]), int(ids[-1]) + 1)
        return ids

    def reset(self, t: int, top_ids: np.ndarray, bot_ids: np.ndarray) -> None:
        """Invalidate the cache: a reset at ``t`` changed the partition."""
        self._top_sel = self._selector(top_ids)
        self._bot_sel = self._selector(bot_ids)
        self._filled = t + 1
        self._chunk = _SCAN_CHUNK_MIN

    def _extend(self) -> None:
        t1 = min(self._steps, self._filled + self._chunk)
        block = self._values[self._filled : t1]
        self._top_min[self._filled : t1] = block[:, self._top_sel].min(axis=1)
        self._bot_max[self._filled : t1] = block[:, self._bot_sel].max(axis=1)
        self._filled = t1
        self._chunk = min(self._chunk * 4, _SCAN_CHUNK_MAX)

    def next_violation(self, start: int, m2: int) -> int:
        """First ``t >= start`` whose row violates a filter, or ``T``.

        The doubled-bound comparisons ``2·min < M2`` / ``2·max > M2`` are
        folded into integer thresholds on the raw reductions (exact for any
        sign): ``min < ceil(M2/2)`` and ``max > floor(M2/2)``.
        """
        lo = -((-m2) // 2)  # ceil(m2 / 2)
        hi = m2 // 2  # floor(m2 / 2)
        T = self._steps
        pos = start
        # Compare in geometric sub-windows from ``pos`` rather than over the
        # whole cached region, so violation-dense stretches behind a long
        # filled prefix cost O(span) per event instead of O(filled - pos).
        span = _SCAN_CHUNK_MIN
        while pos < T:
            if self._filled <= pos:
                self._extend()
                continue
            end = min(self._filled, pos + span)
            window = (self._top_min[pos:end] < lo) | (self._bot_max[pos:end] > hi)
            first = int(window.argmax())
            if window[first]:
                return pos + first
            pos = end
            span = min(span * 4, _SCAN_CHUNK_MAX)
        return T


def _run_fast(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> FastResult:
    """Run Algorithm 1 over a ``(T, n)`` matrix, skipping quiet segments.

    Drop-in replacement for the vectorized engine with identical output for
    identical arguments; expected to dominate it whenever violation steps
    are sparse (the regime the algorithm targets).
    """
    values = check_matrix(values)
    T, n = values.shape
    k, n = check_k(k, n)
    protocol = protocol or ProtocolConfig()
    if protocol.broadcast_every_round:
        raise NotImplementedError(
            "the fast engine implements the default broadcast-on-improvement "
            "policy only; use the faithful engine for ablation A3"
        )
    rng = derive_rng(seed, 0)
    counts = {p: 0 for p in _PHASES}
    history = np.empty((T, k), dtype=np.int64)
    result = FastResult(n=n, k=k, steps=T, topk_history=history, by_phase=counts)

    if k == n:
        history[:] = np.arange(n, dtype=np.int64)[None, :]
        return result

    ids = np.arange(n, dtype=np.int64)
    sides = np.zeros(n, dtype=bool)
    top_ids = ids[:0]  # cached ascending TOP/BOTTOM id vectors,
    bot_ids = ids[:0]  # refreshed only by filter_reset
    m2 = 0
    t_plus = 0
    t_minus = 0
    start_charge = 1 if protocol.charge_start_broadcast else 0
    scanner = _SegmentScanner(values)

    def protocol_run(participants: np.ndarray, row: np.ndarray, upper: int, sign: int, phase: str, initiated: bool):
        return _protocol_run(participants, row, upper, sign, phase, initiated, counts, rng, start_charge)

    def filter_reset(row: np.ndarray, t: int) -> None:
        nonlocal m2, t_plus, t_minus, top_ids, bot_ids
        result.resets += 1
        result.reset_times.append(t)
        winners, winner_vals = _reset_sweeps(ids, row, n, k, protocol_run)
        counts["reset_broadcast"] += 1
        sides[:] = False
        sides[winners[:k]] = True
        top_ids = np.flatnonzero(sides)
        bot_ids = np.flatnonzero(~sides)
        scanner.reset(t, top_ids, bot_ids)
        t_plus = winner_vals[k - 1]
        t_minus = winner_vals[k]
        m2 = t_plus + t_minus

    # t = 0 initialization.
    filter_reset(values[0], 0)
    history[0] = top_ids

    bottom_bound = max(1, n - k)
    top_bound = max(1, k)
    t = 1
    while t < T:
        v = scanner.next_violation(t, m2)
        if v > t:  # quiet segment: the partition is frozen, fill by slice
            history[t:v] = top_ids
        if v == T:
            break
        row = values[v]
        lo = -((-m2) // 2)  # 2*v < m2  <=>  v < ceil(m2/2)
        hi = m2 // 2  # 2*v > m2  <=>  v > floor(m2/2)
        viol_top = top_ids[row[top_ids] < lo]
        viol_bot = bot_ids[row[bot_ids] > hi]
        min_out = protocol_run(viol_top, row, top_bound, -1, "violation_min", False)
        max_out = protocol_run(viol_bot, row, bottom_bound, +1, "violation_max", False)
        result.handler_calls += 1
        result.handler_times.append(v)
        if max_out is None:
            max_out = protocol_run(bot_ids, row, bottom_bound, +1, "handler_max", True)
        elif not (skip_redundant_min and min_out is not None):
            min_out = protocol_run(top_ids, row, top_bound, -1, "handler_min", True)
        assert min_out is not None and max_out is not None
        t_plus = min(t_plus, min_out[1])
        t_minus = max(t_minus, max_out[1])
        if t_plus < t_minus:
            filter_reset(row, v)
            result.handler_times.pop()  # reclassified as a reset step
        else:
            m2 = t_plus + t_minus
            counts["midpoint_broadcast"] += 1
        history[v] = top_ids
        t = v + 1
    return result


def run_fast(
    values: np.ndarray,
    k: int,
    *,
    seed=None,
    skip_redundant_min: bool = False,
    protocol: ProtocolConfig | None = None,
) -> FastResult:
    """Deprecated entry point; use ``repro.run(RunSpec(..., engine="fast"))``."""
    warn_deprecated("run_fast", 'repro.run(RunSpec(..., engine="fast"))')
    return _run_fast(
        values, k, seed=seed, skip_redundant_min=skip_redundant_min, protocol=protocol
    )


def _engine_runner(values: np.ndarray, k: int, *, seed, config) -> RunResult:
    check_counting_config(config, "fast")
    result = _run_fast(
        values,
        k,
        seed=seed,
        skip_redundant_min=config.skip_redundant_min,
        protocol=config.protocol,
    )
    return RunResult.from_counting(result, engine="fast")


register_engine(
    "fast",
    description="segment-skipping event-driven counting engine (quiet steps cost ~0)",
    capabilities={CAP_TRAJECTORY, CAP_COUNTING},
    runner=_engine_runner,
)
