"""The engine-independent result of one Algorithm-1 execution.

Every registered engine — the faithful object monitor, the vectorized and
segment-skipping counting engines, and any future Numba/sharded engine —
reports its outcome as a :class:`RunResult`, so callers read
``total_messages``, reset times, and per-phase message counts uniformly
without knowing which implementation ran.

The adapters normalize the two native result shapes:

* :meth:`RunResult.from_monitor` wraps a
  :class:`~repro.core.events.MonitorResult` (ledger-backed, ``Phase``-keyed
  counts, per-step events);
* :meth:`RunResult.from_counting` wraps a
  :class:`~repro.engine.vectorized.VectorizedResult` (plain string-keyed
  counters).

Both drop zero-count phases and key ``by_phase`` by plain strings, so two
results from different engines compare field-by-field — the property the
differential tests (:mod:`repro.engine.compare`) are built on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Unified outcome of a full monitoring run on any engine.

    Attributes
    ----------
    engine:
        Registry name of the engine that produced this result.
    topk_history:
        ``(T, k)`` int array; row ``t`` holds the reported top-k node ids
        (ascending id order) after step ``t``.
    by_phase:
        Nonzero message counts keyed by plain phase strings
        (``"reset_protocol"``, ``"midpoint_broadcast"``, ...).
    reset_times / handler_times:
        Times of full filter resets (including t=0) and of handler
        invocations that did *not* escalate to a reset.
    raw:
        The engine's native result object (``MonitorResult`` or
        ``VectorizedResult``) for engine-specific detail: events, the
        message ledger, recorded message objects.
    spec:
        The :class:`~repro.api.RunSpec` that produced this result, when the
        run went through :func:`repro.api.run`.
    """

    engine: str
    n: int
    k: int
    steps: int
    topk_history: np.ndarray
    by_phase: dict[str, int] = field(default_factory=dict)
    resets: int = 0
    handler_calls: int = 0
    reset_times: list[int] = field(default_factory=list)
    handler_times: list[int] = field(default_factory=list)
    raw: Any = None
    spec: Any = None

    # ------------------------------------------------------------- metrics

    @property
    def total_messages(self) -> int:
        """Total unit-cost messages over the whole run."""
        return sum(self.by_phase.values())

    @property
    def quiet_steps(self) -> int:
        """Steps with zero communication.

        Derived from the counters, not the time lists: every noisy step is
        either a handler invocation (midpoint or escalated reset) or the
        t=0 initialization reset, so the count stays correct even for
        faithful runs that did not collect events.
        """
        return self.steps - self.handler_calls - (1 if self.resets else 0)

    def messages_per_step(self) -> float:
        """Average messages per observation step."""
        return self.total_messages / self.steps if self.steps else 0.0

    def topk_at(self, t: int) -> set[int]:
        """The reported top-k set after step ``t``."""
        return set(int(i) for i in self.topk_history[t])

    # ---------------------------------------------------- optional extras

    @property
    def events(self):
        """Per-step events when the engine collected them, else ``None``."""
        return getattr(self.raw, "events", None)

    @property
    def ledger(self):
        """The message ledger when the engine kept one, else ``None``."""
        return getattr(self.raw, "ledger", None)

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        native = getattr(self.raw, "describe", None)
        if callable(native):
            return native()
        return (
            f"run[{self.engine}](n={self.n}, k={self.k}) over {self.steps} steps: "
            f"{self.total_messages} messages, {self.handler_calls} handler calls, "
            f"{self.resets} resets, {self.quiet_steps} quiet steps"
        )

    # ------------------------------------------------------------ adapters

    @classmethod
    def from_monitor(cls, result, engine: str = "faithful") -> "RunResult":
        """Adapt a :class:`~repro.core.events.MonitorResult`.

        Reset/handler times come from the per-step events, so they are
        complete only when the run collected events
        (``MonitorConfig.collect_events=True``, the default).
        """
        return cls(
            engine=engine,
            n=result.n,
            k=result.k,
            steps=result.steps,
            topk_history=result.topk_history,
            by_phase={p.value: c for p, c in result.ledger.by_phase.items() if c},
            resets=result.resets,
            handler_calls=result.handler_calls,
            reset_times=result.reset_times(),
            handler_times=result.handler_times(),
            raw=result,
        )

    @classmethod
    def from_counting(cls, result, engine: str) -> "RunResult":
        """Adapt a counting-engine result (``VectorizedResult``-shaped)."""
        return cls(
            engine=engine,
            n=result.n,
            k=result.k,
            steps=result.steps,
            topk_history=result.topk_history,
            by_phase={p: c for p, c in result.by_phase.items() if c},
            resets=result.resets,
            handler_calls=result.handler_calls,
            reset_times=list(result.reset_times),
            handler_times=list(result.handler_times),
            raw=result,
        )
