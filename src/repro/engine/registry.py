"""Engine registry: the pluggable seam for Algorithm-1 implementations.

Three engines ship with the package and self-register on first lookup:

* ``faithful`` — the object-model monitor (transports, ledger, events;
  audit and every ablation knob).
* ``vectorized`` — the flat-NumPy per-step counting engine.
* ``fast`` — the segment-skipping event-driven counting engine.

All three follow the shared randomness convention, so for equal seeds their
:class:`~repro.engine.results.RunResult` output is bit-identical — new
engines that claim the same are held to it by the differential tests.

A new engine registers itself from its own module and becomes reachable by
name everywhere (``repro.run(spec, engine="myengine")``, the CLI's
``--engine`` / ``--list-engines``) with no changes to any other file::

    from repro.engine.registry import CAP_COUNTING, CAP_TRAJECTORY, register_engine
    from repro.engine.results import RunResult

    def _runner(values, k, *, seed, config):
        ...
        return RunResult(...)

    register_engine(
        "myengine",
        description="one line for --list-engines",
        capabilities={CAP_TRAJECTORY, CAP_COUNTING},
        runner=_runner,
    )

Capability flags are advisory metadata: they tell callers (and the CLI
listing) what a result will contain, while unsupported *requests* (e.g.
``audit=True`` on a counting engine) fail loudly inside the runner.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError, RegistryError

__all__ = [
    "CAP_TRAJECTORY",
    "CAP_COUNTING",
    "CAP_EVENTS",
    "CAP_MESSAGES",
    "CAP_AUDIT",
    "CAP_ABLATIONS",
    "CAP_STREAMING",
    "CAP_CHECKPOINT",
    "EngineInfo",
    "ENGINES",
    "register_engine",
    "get_engine",
    "get_session_factory",
    "get_session_codec",
    "list_engines",
]

#: Per-step top-k trajectory in the result.
CAP_TRAJECTORY = "trajectory"
#: Counter-only accounting (no transports or message objects).
CAP_COUNTING = "counting"
#: Per-step :class:`~repro.core.events.StepEvent` records.
CAP_EVENTS = "events"
#: Full message-object recording (``record_messages=True``).
CAP_MESSAGES = "messages"
#: Per-step ground-truth auditing (``audit=True``).
CAP_AUDIT = "audit"
#: Ablation knobs (``always_reset``, ``broadcast_every_round``).
CAP_ABLATIONS = "ablations"
#: Incremental row-at-a-time stepping (``session_factory`` registered);
#: required to host live sessions in :mod:`repro.service`.
CAP_STREAMING = "streaming"
#: Session checkpoint/restore (``session_snapshot``/``session_restore``
#: registered); required for the service's ``--checkpoint-dir`` survival.
CAP_CHECKPOINT = "checkpoint"

#: ``runner(values, k, *, seed, config) -> RunResult``
EngineRunner = Callable[..., Any]
#: ``session_factory(n, k, *, seed, config) -> stepper`` where the stepper
#: exposes ``step(row) -> topk``, ``time``, ``topk`` and ``message_count``
#: (the contract :mod:`repro.service` builds on).
SessionFactory = Callable[..., Any]
#: ``session_snapshot(stepper) -> dict`` — JSON-safe full algorithmic
#: state, bit-identically invertible by the paired ``session_restore``.
SessionSnapshot = Callable[[Any], dict]
#: ``session_restore(state) -> stepper`` — inverse of ``session_snapshot``.
SessionRestore = Callable[[dict], Any]


@dataclass(frozen=True)
class EngineInfo:
    """One registered engine: identity, capabilities, and entry points."""

    name: str
    description: str
    capabilities: frozenset[str]
    runner: EngineRunner
    session_factory: SessionFactory | None = None
    session_snapshot: SessionSnapshot | None = None
    session_restore: SessionRestore | None = None

    def supports(self, capability: str) -> bool:
        """Whether this engine advertises ``capability``."""
        return capability in self.capabilities


ENGINES: dict[str, EngineInfo] = {}

# Built-in engines live in their own modules and self-register at import;
# they are imported lazily so `import repro` stays cheap and so third-party
# engines can register before, after, or instead of them.
_BUILTIN_MODULES = (
    "repro.engine.faithful",
    "repro.engine.vectorized",
    "repro.engine.fast",
)
_builtins_loaded = False


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_engine(
    name: str,
    *,
    description: str,
    capabilities=(),
    runner: EngineRunner,
    session_factory: SessionFactory | None = None,
    session_snapshot: SessionSnapshot | None = None,
    session_restore: SessionRestore | None = None,
) -> EngineInfo:
    """Register an engine under ``name``.

    Args
    ----
    name:
        Registry key, as passed to ``repro.run(spec, engine=name)`` and
        the CLI's ``--engine``.
    description:
        One line for ``--list-engines`` and the README engine table.
    capabilities:
        Iterable of the ``CAP_*`` flags the engine's results support.
    runner:
        ``runner(values, k, *, seed, config) -> RunResult``.
    session_factory:
        Optional ``(n, k, *, seed, config) -> stepper`` constructor for
        incremental row-at-a-time sessions; registering one is what makes
        the engine usable by the streaming service (advertise it with
        :data:`CAP_STREAMING`).
    session_snapshot / session_restore:
        Optional checkpoint codec for the engine's steppers: ``snapshot``
        captures a stepper's full algorithmic state as a JSON-safe dict
        and ``restore`` rebuilds a stepper that behaves bit-identically —
        including future coin flips.  Registering the pair is what lets
        :meth:`repro.service.SessionManager.checkpoint` persist sessions
        hosted on this engine (advertise with :data:`CAP_CHECKPOINT`).

    Returns
    -------
    The stored :class:`EngineInfo`.

    Raises
    ------
    ConfigurationError
        If ``name`` is already registered.
    RegistryError
        If a declared capability is not backed by its seam: ``streaming``
        without a ``session_factory``, or ``checkpoint`` without the full
        ``session_snapshot``/``session_restore`` codec.  (The static
        linter's R3 rule checks the same contract — and its converse —
        at review time; this is the runtime backstop for engines
        registered from outside the repo.)
    """
    if name in ENGINES:
        raise ConfigurationError(f"engine {name!r} is already registered")
    caps = frozenset(capabilities)
    if (session_snapshot is None) != (session_restore is None):
        raise RegistryError(
            f"engine {name!r} must register session_snapshot and session_restore "
            f"together (a one-sided checkpoint codec cannot round-trip)"
        )
    if CAP_STREAMING in caps and session_factory is None:
        raise RegistryError(
            f"engine {name!r} declares the {CAP_STREAMING!r} capability but registers "
            f"no session_factory; the streaming service would accept sessions it "
            f"cannot host — register a factory or drop the capability"
        )
    if CAP_CHECKPOINT in caps and (session_snapshot is None or session_restore is None):
        raise RegistryError(
            f"engine {name!r} declares the {CAP_CHECKPOINT!r} capability but registers "
            f"no session_snapshot/session_restore codec; checkpoints of its sessions "
            f"could never be taken — register the codec pair or drop the capability"
        )
    info = EngineInfo(
        name=name,
        description=description,
        capabilities=caps,
        runner=runner,
        session_factory=session_factory,
        session_snapshot=session_snapshot,
        session_restore=session_restore,
    )
    ENGINES[name] = info
    return info


def get_engine(name: str) -> EngineInfo:
    """Look up a registered engine by name.

    Args
    ----
    name:
        A registered engine name (built-ins load on first lookup).

    Returns
    -------
    The engine's :class:`EngineInfo`.

    Raises
    ------
    ConfigurationError
        If no engine of that name is registered.

    Example
    -------
    >>> get_engine("fast").supports(CAP_COUNTING)
    True
    """
    _load_builtins()
    try:
        return ENGINES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; registered engines: {', '.join(sorted(ENGINES))}"
        ) from None


def get_session_factory(name: str) -> SessionFactory:
    """The streaming-session constructor of a registered engine.

    Args
    ----
    name:
        A registered engine name.

    Returns
    -------
    The engine's ``session_factory``.

    Raises
    ------
    ConfigurationError
        If the engine exists but registered no session factory (it cannot
        host live sessions), or if no engine of that name is registered.

    Example
    -------
    >>> stepper = get_session_factory("vectorized")(4, 2, seed=0)
    >>> stepper.step([30, 10, 20, 40]).tolist()
    [0, 3]
    """
    info = get_engine(name)
    if info.session_factory is None:
        streaming = sorted(e.name for e in ENGINES.values() if e.session_factory is not None)
        raise ConfigurationError(
            f"engine {name!r} does not support streaming sessions; "
            f"streaming engines: {', '.join(streaming)}"
        )
    return info.session_factory


def get_session_codec(name: str) -> tuple[SessionSnapshot, SessionRestore]:
    """The checkpoint codec of a registered engine.

    Args
    ----
    name:
        A registered engine name.

    Returns
    -------
    The engine's ``(session_snapshot, session_restore)`` pair.

    Raises
    ------
    ConfigurationError
        If the engine registered no checkpoint codec (its sessions cannot
        be persisted), or if no engine of that name is registered.

    Example
    -------
    >>> snapshot, restore = get_session_codec("vectorized")
    >>> stepper = get_session_factory("vectorized")(4, 2, seed=0)
    >>> _ = stepper.step([30, 10, 20, 40])
    >>> restore(snapshot(stepper)).topk.tolist()
    [0, 3]
    """
    info = get_engine(name)
    if info.session_snapshot is None or info.session_restore is None:
        supported = sorted(e.name for e in ENGINES.values() if e.session_snapshot is not None)
        raise ConfigurationError(
            f"engine {name!r} does not support session checkpointing; "
            f"checkpointable engines: {', '.join(supported)}"
        )
    return info.session_snapshot, info.session_restore


def list_engines() -> list[EngineInfo]:
    """All registered engines in name order (built-ins loaded on demand).

    >>> [info.name for info in list_engines()]
    ['faithful', 'fast', 'vectorized']
    """
    _load_builtins()
    return [ENGINES[name] for name in sorted(ENGINES)]
