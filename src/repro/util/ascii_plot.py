"""Terminal line/bar charts for experiment output.

matplotlib is not available in the reproduction environment, so experiment
"figures" are rendered as ASCII charts.  These are deliberately simple:
they show *shape* (growth curves, crossovers), which is what the
reproduction must demonstrate.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["line_plot", "bar_chart", "sparkline"]

_SPARK_CHARS = " .:-=+*#%@"


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2e}"
    return f"{v:.3g}"


def sparkline(values: Sequence[float]) -> str:
    """One-line intensity plot of a series (for progress output)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_CHARS[len(_SPARK_CHARS) // 2] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    title: str | None = None,
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart; with ``log_scale`` bars are proportional to log10.

    Log scale is the right default when comparing message counts spanning
    orders of magnitude (e.g. naive vs filter-based).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    vals = [float(v) for v in values]
    if log_scale:
        scaled = [math.log10(max(v, 1.0)) for v in vals]
    else:
        scaled = vals
    peak = max(scaled) if scaled else 0.0
    label_w = max((len(str(label)) for label in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, raw, s in zip(labels, vals, scaled):
        bar_len = 0 if peak <= 0 else max(0, int(round(s / peak * width)))
        lines.append(f"{str(label).ljust(label_w)} | {'#' * bar_len} {_fmt(raw)}")
    return "\n".join(lines)


def line_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a marker character; points are mapped onto a
    ``height x width`` grid spanning the data range.
    """
    markers = "ox+*@^%&"
    xs = [float(x) for x in xs]
    if not xs:
        raise ValueError("xs must be non-empty")
    all_ys = [float(y) for ys in series.values() for y in ys]
    if not all_ys:
        raise ValueError("series must contain data")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(all_ys), max(all_ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (_, ys) in enumerate(series.items()):
        if len(ys) != len(xs):
            raise ValueError("every series must have one y per x")
        marker = markers[s_idx % len(markers)]
        for x, y in zip(xs, ys):
            col = int((float(x) - x_lo) / x_span * (width - 1))
            row = int((float(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_s, y_lo_s = _fmt(y_hi), _fmt(y_lo)
    margin = max(len(y_hi_s), len(y_lo_s))
    for r, row_chars in enumerate(grid):
        if r == 0:
            prefix = y_hi_s.rjust(margin)
        elif r == height - 1:
            prefix = y_lo_s.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix} |{''.join(row_chars)}")
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(" " * margin + f"  {_fmt(x_lo)} .. {_fmt(x_hi)}  ({x_label})")
    legend = "   ".join(f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series))
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)
