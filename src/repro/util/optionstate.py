"""Process-wide option state: one frozen dataclass, set/override/current.

Both the sweep harness (:class:`~repro.analysis.sweeps.SweepDefaults`) and
the queue backend (:class:`~repro.analysis.distributed_backend.QueueOptions`)
need the same three operations over a module-wide frozen-dataclass value:
read it, replace fields (rejecting unknown names loudly), and override it
within a ``with`` block.  This class implements them once.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Generic, TypeVar

from repro.errors import ConfigurationError

__all__ = ["OptionState"]

T = TypeVar("T")


class OptionState(Generic[T]):
    """Holder for one process-wide frozen-dataclass options value.

    Args
    ----
    initial:
        The starting (default-constructed) options dataclass instance.
    label:
        Human label used in error messages, e.g. ``"queue option"``.
    """

    def __init__(self, initial: T, label: str):
        self._value = initial
        self._label = label

    def current(self) -> T:
        """The options value in effect right now."""
        return self._value

    def set(self, **overrides: Any) -> T:
        """Replace fields; returns the new value.

        Raises
        ------
        ConfigurationError
            For a field name the dataclass does not define.
        """
        try:
            self._value = replace(self._value, **overrides)
        except TypeError:
            known = ", ".join(type(self._value).__dataclass_fields__)
            raise ConfigurationError(
                f"unknown {self._label}(s) in {sorted(overrides)}; known: {known}"
            ) from None
        return self._value

    @contextmanager
    def override(self, **overrides: Any):
        """Temporarily apply ``overrides`` (restored on exit)."""
        saved = self._value
        self.set(**overrides)
        try:
            yield self._value
        finally:
            self._value = saved
