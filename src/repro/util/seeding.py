"""Deterministic seeding utilities.

Every stochastic component (protocol coin flips, workload generators,
experiment repetitions) takes an explicit seed and derives child generators
through :class:`numpy.random.SeedSequence` spawning, so that

* the same top-level seed reproduces an entire experiment bit-for-bit,
* independent components never share a stream (no accidental correlation),
* the faithful and the vectorized engines can be driven by *identical*
  randomness, which is what makes exact differential testing possible
  (invariant I4 in DESIGN.md).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["normalize_seed", "derive_rng", "SeedStream"]


def normalize_seed(seed: int | None | np.random.SeedSequence) -> np.random.SeedSequence:
    """Coerce a user-facing seed into a :class:`~numpy.random.SeedSequence`.

    ``None`` produces OS entropy (non-reproducible, allowed for interactive
    use); ints must be non-negative.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is None:
        return np.random.SeedSequence()
    if not isinstance(seed, (int, np.integer)):
        raise ConfigurationError(
            f"seed must be an int, None or SeedSequence, got {type(seed).__name__}"
        )
    if seed < 0:
        raise ConfigurationError(f"seed must be non-negative, got {seed}")
    return np.random.SeedSequence(int(seed))


def derive_rng(seed: int | None | np.random.SeedSequence, *keys: int) -> np.random.Generator:
    """Create a generator for component ``keys`` under the root ``seed``.

    ``derive_rng(s, 3, 1)`` always yields the same stream, distinct from any
    other key path.  Uses ``spawn_key`` composition rather than arithmetic on
    the seed value so nearby seeds stay uncorrelated.
    """
    root = normalize_seed(seed)
    child = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + tuple(int(k) for k in keys),
    )
    return np.random.Generator(np.random.PCG64(child))


class SeedStream:
    """An inexhaustible stream of child seeds from a root seed.

    Used by experiment runners that need one independent seed per repetition:

    >>> ss = SeedStream(123)
    >>> seeds = [ss.next_seed() for _ in range(3)]
    >>> len(set(map(str, seeds)))
    3
    """

    def __init__(self, seed: int | None | np.random.SeedSequence):
        self._root = normalize_seed(seed)
        self._count = 0

    @property
    def root(self) -> np.random.SeedSequence:
        """The root seed sequence."""
        return self._root

    @property
    def spawned(self) -> int:
        """How many children have been handed out so far."""
        return self._count

    def next_seed(self) -> np.random.SeedSequence:
        """Return the next child :class:`~numpy.random.SeedSequence`."""
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(self._root.spawn_key) + (self._count,),
        )
        self._count += 1
        return child

    def next_rng(self) -> np.random.Generator:
        """Return a generator seeded with the next child seed."""
        return np.random.Generator(np.random.PCG64(self.next_seed()))

    def rngs(self, count: int) -> Iterator[np.random.Generator]:
        """Yield ``count`` independent generators."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        for _ in range(count):
            yield self.next_rng()
