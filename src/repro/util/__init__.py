"""Utility helpers: integer math, seeding, validation, ASCII rendering."""

from repro.util.intmath import (
    ceil_log2,
    floor_log2,
    is_power_of_two,
    midpoint,
    next_power_of_two,
)
from repro.util.seeding import SeedStream, derive_rng, normalize_seed
from repro.util.validation import (
    check_k,
    check_matrix,
    check_positive,
    check_probability,
)

__all__ = [
    "ceil_log2",
    "floor_log2",
    "is_power_of_two",
    "midpoint",
    "next_power_of_two",
    "SeedStream",
    "derive_rng",
    "normalize_seed",
    "check_k",
    "check_matrix",
    "check_positive",
    "check_probability",
]
