"""Plain-text table rendering for experiment reports.

The experiment harness prints every regenerated table in a fixed-width ASCII
format (and can emit Markdown for EXPERIMENTS.md).  No third-party
pretty-printers are used so benchmark output stays dependency-free and easy
to diff across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["format_cell", "Table"]


def format_cell(value: Any, *, float_fmt: str = "{:.3f}") -> str:
    """Render one cell: floats via ``float_fmt``, ints verbatim, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return float_fmt.format(value)
    return str(value)


@dataclass
class Table:
    """A small column-aligned table builder.

    >>> t = Table(["n", "mean", "bound"], title="E1")
    >>> t.add_row([16, 7.81, 9.0])
    >>> print(t.render())  # doctest: +ELLIPSIS
    E1
    ...
    """

    columns: Sequence[str]
    title: str | None = None
    float_fmt: str = "{:.3f}"
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[Any]) -> None:
        """Append a row; must match the column count."""
        row = [format_cell(v, float_fmt=self.float_fmt) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(f"row has {len(row)} cells, table has {len(self.columns)} columns")
        self.rows.append(row)

    def add_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(row)

    def _widths(self) -> list[int]:
        widths = [len(str(c)) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        return widths

    def render(self) -> str:
        """Render as an aligned ASCII table."""
        widths = self._widths()
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        rule = "  ".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(header)
        lines.append(rule)
        for row in self.rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render as a GitHub-flavored Markdown table."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "|".join(["---"] * len(self.columns)) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_records(self) -> list[dict[str, str]]:
        """Return rows as dicts keyed by column name (for tests)."""
        return [dict(zip(map(str, self.columns), row)) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
