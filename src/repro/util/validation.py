"""Argument validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.types import INT_DTYPE, ValueMatrix

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_k",
    "check_matrix",
    "as_value_matrix",
]


def check_positive(name: str, value: Any) -> int:
    """Require an integer ``>= 1``; return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative(name: str, value: Any) -> int:
    """Require an integer ``>= 0``; return it as ``int``."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(name: str, value: Any) -> float:
    """Require a float in ``[0, 1]``; return it as ``float``."""
    try:
        p = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if not (0.0 <= p <= 1.0) or np.isnan(p):
        raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
    return p


def check_k(k: Any, n: Any) -> tuple[int, int]:
    """Validate a ``(k, n)`` pair for top-k monitoring.

    Requires ``1 <= k <= n``.  ``k == n`` is allowed (the problem becomes
    trivial and the monitor short-circuits it); ``k == 0`` is rejected, as in
    the paper ``k`` ranges over ``1..n``.
    """
    n = check_positive("n", n)
    k = check_positive("k", k)
    if k > n:
        raise ConfigurationError(f"k must be <= n, got k={k}, n={n}")
    return k, n


def as_value_matrix(values: Any) -> ValueMatrix:
    """Coerce input into a C-contiguous ``(T, n)`` int64 matrix.

    Accepts lists of rows or numpy arrays; floats are rejected (the paper's
    values are integers, and silent truncation would corrupt gap/Δ
    measurements).
    """
    arr = np.asarray(values)
    if arr.ndim != 2:
        raise WorkloadError(f"value matrix must be 2-D (T, n), got shape {arr.shape}")
    if arr.size == 0:
        raise WorkloadError("value matrix must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.trunc(arr)):
            raise WorkloadError(
                "value matrix has float dtype; cast explicitly with .astype(np.int64) "
                "if the values are intended to be integers"
            )
        raise WorkloadError(f"value matrix must have an integer dtype, got {arr.dtype}")
    return np.ascontiguousarray(arr, dtype=INT_DTYPE)


def check_matrix(values: Any, *, n: int | None = None) -> ValueMatrix:
    """Validate a value matrix and (optionally) its node count."""
    arr = as_value_matrix(values)
    if n is not None and arr.shape[1] != n:
        raise WorkloadError(f"value matrix has {arr.shape[1]} columns, expected n={n}")
    return arr
