"""One-shot deprecation warnings for legacy call paths.

Deprecated shims (``run_fast``, ``run_vectorized``) stay callable for the
life of the 1.x line but should nag exactly once per process — a sweep
calling a shim ten thousand times must not print ten thousand warnings even
under ``-W always``.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated"]

_WARNED: set[str] = set()


def warn_deprecated(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit a :class:`DeprecationWarning` for ``old``, once per process."""
    if old in _WARNED:
        return
    _WARNED.add(old)
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_warned() -> None:
    """Forget which shims already warned (test isolation hook)."""
    _WARNED.clear()
