"""Exact integer math helpers used by protocols and filter arithmetic.

The paper's analysis counts *halvings* of the gap between the running
extremes ``T+`` and ``T-`` (proof of Theorem 3.3) and runs Algorithm 2 for
``log N`` rounds.  Getting these right for non-powers-of-two and for tiny
inputs requires exact integer log/midpoint helpers rather than
``math.log2`` float calls, which go wrong near 2**53.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ConfigurationError

__all__ = [
    "ceil_log2",
    "floor_log2",
    "next_power_of_two",
    "is_power_of_two",
    "midpoint",
    "halvings_to_close",
]


def floor_log2(x: int) -> int:
    """Largest ``e`` with ``2**e <= x``; exact for arbitrarily large ints.

    Raises :class:`ConfigurationError` for ``x < 1``.
    """
    x = int(x)
    if x < 1:
        raise ConfigurationError(f"floor_log2 requires x >= 1, got {x}")
    return x.bit_length() - 1


def ceil_log2(x: int) -> int:
    """Smallest ``e`` with ``2**e >= x``; exact for arbitrarily large ints."""
    x = int(x)
    if x < 1:
        raise ConfigurationError(f"ceil_log2 requires x >= 1, got {x}")
    return (x - 1).bit_length()


def next_power_of_two(x: int) -> int:
    """Smallest power of two ``>= x`` (and ``>= 1``)."""
    x = int(x)
    if x <= 1:
        return 1
    return 1 << ceil_log2(x)


def is_power_of_two(x: int) -> bool:
    """Whether ``x`` is a positive power of two."""
    x = int(x)
    return x > 0 and (x & (x - 1)) == 0


def midpoint(lo: int | Fraction, hi: int | Fraction) -> Fraction:
    """Exact midpoint of two points as a :class:`fractions.Fraction`.

    Filter bounds live at midpoints of integer values, hence at half-integer
    positions after a reset and at dyadic positions after repeated halving.
    Using :class:`~fractions.Fraction` keeps the halving count exact: the
    interval ``[T-, T+]`` contracts by exactly 1/2 per handler call, so the
    ``log Δ`` bound in Theorem 3.3 is observable without float drift.
    """
    return (Fraction(lo) + Fraction(hi)) / 2


def halvings_to_close(gap: int | Fraction, *, floor_gap: int | Fraction = 1) -> int:
    """How many halvings shrink ``gap`` to at most ``floor_gap``.

    This is the paper's ``log Δ`` quantity: the number of handler calls
    (each of which at least halves ``T+ - T-``) that can occur before a
    reset becomes inevitable for integer-valued streams.
    """
    gap = Fraction(gap)
    floor_gap = Fraction(floor_gap)
    if floor_gap <= 0:
        raise ConfigurationError("floor_gap must be positive")
    if gap <= floor_gap:
        return 0
    count = 0
    while gap > floor_gap:
        gap = gap / 2
        count += 1
    return count
