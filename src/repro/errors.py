"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
protocol failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "RegistryError",
    "WorkloadError",
    "ProtocolError",
    "InvariantViolation",
    "ExperimentError",
    "ServiceError",
    "ServiceConnectError",
    "BackpressureError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a user supplies invalid parameters.

    Derives from :class:`ValueError` so generic callers that validate
    arguments with ``except ValueError`` keep working.
    """


class RegistryError(ConfigurationError):
    """Raised when an engine registration breaks a capability contract.

    A capability flag is a promise the service acts on: ``streaming``
    promises a ``session_factory``, ``checkpoint`` promises a complete
    ``session_snapshot``/``session_restore`` codec.  Registration is the
    one moment the promise can be checked next to the code that made it,
    so a broken contract fails here rather than deep inside the service.

    Derives from :class:`ConfigurationError` (hence :class:`ValueError`)
    so existing ``except ConfigurationError`` callers keep working.
    """


class WorkloadError(ReproError, ValueError):
    """Raised when a stream/workload specification is malformed."""


class ProtocolError(ReproError, RuntimeError):
    """Raised when a distributed protocol reaches an impossible state.

    This signals a bug in the simulation (e.g. a Las-Vegas protocol
    terminating without a winner), never a user error.
    """


class InvariantViolation(ReproError, AssertionError):
    """Raised by audit hooks when a correctness invariant is broken.

    The monitor can run with ``audit=True``, in which case the coordinator's
    answer is checked against ground truth after every step; a mismatch
    raises this exception.  Tests rely on it.
    """


class ExperimentError(ReproError, RuntimeError):
    """Raised by the experiment harness (unknown ids, bad sweep specs)."""


class ServiceError(ReproError, RuntimeError):
    """Raised by the streaming session service (:mod:`repro.service`).

    Covers unknown session ids, protocol violations on the wire, and
    server-reported request failures surfaced by the client.
    """


class ServiceConnectError(ServiceError):
    """Raised when a TCP connection to the service cannot be established.

    Carries the target address and how many attempts the client's
    :class:`~repro.service.client.RetryPolicy` allowed before giving up —
    a dead or unreachable server, distinguishable from a request that
    failed on a healthy connection.
    """

    def __init__(self, host: str, port: int, attempts: int, last_error: Exception | None = None):
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"cannot connect to service at {host}:{port} "
            f"after {attempts} attempt{'s' if attempts != 1 else ''}{detail}"
        )
        self.host = host
        self.port = port
        self.attempts = attempts
        self.last_error = last_error


class BackpressureError(ServiceError):
    """Raised when a session's bounded inbox is full.

    The service refuses the row instead of queueing unboundedly; callers
    should let the stepper drain (e.g. a waiting query) and retry.
    """

    def __init__(self, session_id: str, limit: int):
        super().__init__(
            f"session {session_id!r}: inbox full ({limit} pending rows); "
            "drain before feeding more"
        )
        self.session_id = session_id
        self.limit = limit
