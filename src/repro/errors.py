"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from runtime
protocol failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "WorkloadError",
    "ProtocolError",
    "InvariantViolation",
    "ExperimentError",
    "ServiceError",
    "BackpressureError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a user supplies invalid parameters.

    Derives from :class:`ValueError` so generic callers that validate
    arguments with ``except ValueError`` keep working.
    """


class WorkloadError(ReproError, ValueError):
    """Raised when a stream/workload specification is malformed."""


class ProtocolError(ReproError, RuntimeError):
    """Raised when a distributed protocol reaches an impossible state.

    This signals a bug in the simulation (e.g. a Las-Vegas protocol
    terminating without a winner), never a user error.
    """


class InvariantViolation(ReproError, AssertionError):
    """Raised by audit hooks when a correctness invariant is broken.

    The monitor can run with ``audit=True``, in which case the coordinator's
    answer is checked against ground truth after every step; a mismatch
    raises this exception.  Tests rely on it.
    """


class ExperimentError(ReproError, RuntimeError):
    """Raised by the experiment harness (unknown ids, bad sweep specs)."""


class ServiceError(ReproError, RuntimeError):
    """Raised by the streaming session service (:mod:`repro.service`).

    Covers unknown session ids, protocol violations on the wire, and
    server-reported request failures surfaced by the client.
    """


class BackpressureError(ServiceError):
    """Raised when a session's bounded inbox is full.

    The service refuses the row instead of queueing unboundedly; callers
    should let the stepper drain (e.g. a waiting query) and retry.
    """

    def __init__(self, session_id: str, limit: int):
        super().__init__(
            f"session {session_id!r}: inbox full ({limit} pending rows); "
            "drain before feeding more"
        )
        self.session_id = session_id
        self.limit = limit
