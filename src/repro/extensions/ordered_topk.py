"""Ordered Top-k-Position Monitoring (the paper's Sect. 5 future work).

"For a variant of our Top-k-Position Monitoring problem in which one is not
only interested in the top-k set but also the ordering of these nodes
according to their values, we conjecture that a combination of the approach
by Lam et al. and our protocol might lead to an
O(log Δ · log(n−k))-competitive algorithm."

Construction implemented here:

* The **boundary** between the top-k and the rest is maintained exactly as
  in Algorithm 1 (sides + doubled bound ``M2`` + T+/T− + handler + reset).
* **Inside** the top-k, the coordinator additionally maintains the order of
  the k members with Lam-style midpoint filters between rank-adjacent
  members, built from the members' last-reported values.  A member whose
  value leaves its internal interval — while staying above the boundary —
  reports directly (one message); the coordinator re-sorts its estimates and
  pushes refreshed internal intervals to members whose interval changed.
* A ``FilterReset`` learns all k+1 boundary values, so internal estimates
  are refreshed for free when the set changes.

Correctness invariant: each member's true value lies inside its internal
interval intersected with ``[M, ∞)``, so the estimate order equals the true
order (up to ties at shared interval endpoints) and the set invariant is
inherited from Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.monitor import MonitorConfig, OnlineSession
from repro.engine.kernel import FilterState
from repro.model.ledger import MessageLedger
from repro.model.message import MessageKind, Phase
from repro.util.validation import check_k, check_matrix

__all__ = ["OrderedTopKMonitor", "OrderedResult"]


@dataclass
class OrderedResult:
    """Result of an ordered monitoring run.

    ``order_history`` is ``(T, k)``: row ``t`` holds the member ids in
    descending value order.  ``boundary_messages`` /
    ``order_messages`` split the cost between the Algorithm-1 machinery and
    the intra-top-k order maintenance.
    """

    n: int
    k: int
    steps: int
    order_history: np.ndarray
    ledger: MessageLedger
    resets: int = 0
    handler_calls: int = 0
    order_fixups: int = 0
    audit_failures: int = 0

    @property
    def total_messages(self) -> int:
        """All messages across both mechanisms."""
        return self.ledger.total

    @property
    def order_messages(self) -> int:
        """Messages spent maintaining the internal order."""
        return self.ledger.by_phase[Phase.ORDER_TRACKING]

    @property
    def boundary_messages(self) -> int:
        """Messages spent by the Algorithm-1 boundary machinery."""
        return self.total_messages - self.order_messages


class _InternalOrder:
    """Lam-style midpoint order tracker over the current top-k members."""

    def __init__(self) -> None:
        self.members: np.ndarray = np.empty(0, dtype=np.int64)
        self.est: dict[int, int] = {}

    def rebuild(self, members_ranked: list[int], values_ranked: list[int]) -> None:
        """Install fresh estimates from a reset's rank-ordered winners."""
        self.members = np.asarray(members_ranked, dtype=np.int64)
        self.est = {int(m): int(v) for m, v in zip(members_ranked, values_ranked)}

    def ranked(self) -> list[int]:
        """Member ids in descending estimate order (ties: lower id first)."""
        return sorted(self.est, key=lambda i: (-self.est[i], i))

    def intervals(self) -> dict[int, tuple[int | None, int | None]]:
        """Doubled internal interval per member; None = unbounded side."""
        ranked = self.ranked()
        vals = [self.est[i] for i in ranked]
        bounds = [vals[r] + vals[r + 1] for r in range(len(ranked) - 1)]
        out: dict[int, tuple[int | None, int | None]] = {}
        for r, member in enumerate(ranked):
            hi = bounds[r - 1] if r > 0 else None
            lo = bounds[r] if r < len(bounds) else None
            out[member] = (lo, hi)
        return out


class OrderedTopKMonitor:
    """Monitor the ordered top-k by composing Algorithm 1 with order filters."""

    def __init__(self, n: int, k: int, *, seed=None, config: MonitorConfig | None = None):
        self.k, self.n = check_k(k, n)
        if self.k == self.n:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "ordered monitoring requires k < n (with k = n there is no boundary "
                "and the order of all n nodes is full dominance tracking)"
            )
        self.seed = seed
        self.config = config or MonitorConfig()

    def run(self, values: np.ndarray) -> OrderedResult:
        """Monitor a ``(T, n)`` matrix; returns ordered history + costs."""
        values = check_matrix(values, n=self.n)
        T, n = values.shape
        k = self.k
        session = OnlineSession(n, k, seed=self.seed, config=self.config)
        ledger = session.ledger  # order-tracking messages share the ledger
        tracker = _InternalOrder()
        order_history = np.empty((T, k), dtype=np.int64)
        audit_failures = 0
        order_fixups = 0
        prev_members: frozenset[int] = frozenset()
        prev_resets = 0

        for t in range(T):
            row = values[t]
            members = frozenset(int(i) for i in session.observe(row))
            if session.resets != prev_resets or members != prev_members:
                # A reset (or the init) re-learned the ranked top-(k+1):
                # rebuild estimates from ground truth — the reset protocol
                # revealed each winner's value, so no extra messages.
                ranked = sorted(members, key=lambda i: (-int(row[i]), i))
                tracker.rebuild(ranked, [int(row[i]) for i in ranked])
                prev_members = members
                prev_resets = session.resets
            else:
                order_fixups += self._fixup(tracker, row, ledger)
            ranked_now = tracker.ranked()
            order_history[t] = ranked_now
            # Audit: descending true values along the reported order.
            vals_now = row[np.asarray(ranked_now)]
            if np.any(np.diff(vals_now) > 0):
                audit_failures += 1
                if self.config.audit:
                    from repro.errors import InvariantViolation

                    raise InvariantViolation(
                        f"t={t}: reported order {ranked_now} not descending: {vals_now.tolist()}"
                    )
        session.finish()
        return OrderedResult(
            n=n,
            k=k,
            steps=T,
            order_history=order_history,
            ledger=ledger,
            resets=session.resets,
            handler_calls=session.handler_calls,
            order_fixups=order_fixups,
            audit_failures=audit_failures,
        )

    @staticmethod
    def _fixup(tracker: _InternalOrder, row: np.ndarray, ledger: MessageLedger) -> int:
        """Fix-point: report internal violators, refresh changed intervals.

        Returns the number of fix-up iterations (0 = order already valid).
        """
        iterations = 0
        for _ in range(len(tracker.est) + 1):
            intervals = tracker.intervals()
            # The per-rank band check is the kernel's banded quietness form
            # (R1: the 2*v comparison has exactly one implementation).
            violators = FilterState.violates_banded(row, intervals)
            if not violators:
                return iterations
            iterations += 1
            ledger.charge(MessageKind.NODE_TO_COORD, Phase.ORDER_TRACKING, len(violators))
            for m in violators:
                tracker.est[m] = int(row[m])
            new_intervals = tracker.intervals()
            changed = sum(1 for m in new_intervals if new_intervals[m] != intervals[m])
            ledger.charge(MessageKind.COORD_TO_NODE, Phase.ORDER_TRACKING, changed)
        raise AssertionError("order fix-point failed to terminate")  # pragma: no cover
