"""Extensions beyond the paper's main algorithm.

:mod:`repro.extensions.ordered_topk` implements the variant sketched in the
paper's Summary (Sect. 5): monitoring not only the top-k *set* but also the
*ordering* of those k nodes, by combining Lam-et-al-style midpoint filters
inside the top-k with Algorithm 1's boundary machinery.  The paper
conjectures O(log Δ · log(n-k))-competitiveness; experiment E9 measures the
empirical shape.
"""

from repro.extensions.ordered_topk import OrderedResult, OrderedTopKMonitor

__all__ = ["OrderedTopKMonitor", "OrderedResult"]
