"""The paper's theoretical bounds as concrete functions.

Every experiment reports measured quantities next to these formulas so the
tables in EXPERIMENTS.md can show measured/bound ratios directly.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "max_protocol_expected_bound",
    "max_protocol_lower_bound",
    "competitive_bound",
    "ordered_conjecture_bound",
]


def max_protocol_expected_bound(upper_bound: int) -> float:
    """Theorem 4.2: ``E[node messages] <= 2 * log2(N) + 1``.

    ``N`` is the upper bound on participants passed to Algorithm 2 (not the
    actual participant count).
    """
    if upper_bound < 1:
        raise ConfigurationError(f"N must be >= 1, got {upper_bound}")
    if upper_bound == 1:
        return 1.0
    return 2.0 * math.log2(upper_bound) + 1.0


def max_protocol_lower_bound(n: int) -> float:
    """Theorem 4.3's ``Ω(log n)``, instantiated with the BST-path constant.

    The proof reduces to the expected root-to-max path length in a random
    binary search tree, which is the harmonic number ``H_n ~ ln n``; we use
    ``H_n`` as the concrete comparator in E3.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return sum(1.0 / i for i in range(1, n + 1))


def competitive_bound(delta: int, k: int, n: int, *, constant: float = 1.0) -> float:
    """Theorem 4.4 shape: ``(log2(Δ) + k) * log2(n)``, scaled by ``constant``.

    Δ <= 1 contributes nothing (log term clamps at 1 to keep the bound
    positive for degenerate instances); ``n`` below 2 clamps similarly.
    """
    if k < 1 or n < 1:
        raise ConfigurationError("k and n must be >= 1")
    if delta < 0:
        raise ConfigurationError("delta must be >= 0")
    log_delta = math.log2(delta) if delta >= 2 else 1.0
    log_n = math.log2(n) if n >= 2 else 1.0
    return constant * (log_delta + k) * log_n


def ordered_conjecture_bound(delta: int, k: int, n: int, *, constant: float = 1.0) -> float:
    """Section 5 conjecture shape: ``log2(Δ) * log2(n - k)`` (clamped).

    The conjecture concerns the ordered-top-k variant; E9 plots measured
    per-epoch message counts against this shape.
    """
    if not 1 <= k < n:
        raise ConfigurationError("requires 1 <= k < n")
    if delta < 0:
        raise ConfigurationError("delta must be >= 0")
    log_delta = math.log2(delta) if delta >= 2 else 1.0
    log_nk = math.log2(n - k) if n - k >= 2 else 1.0
    return constant * log_delta * log_nk
