"""Pluggable execution backends for :func:`repro.analysis.sweeps.run_sweep`.

A backend turns a flat list of measurement jobs into samples.  The sweep
harness derives all seeds up front and indexes every job, so a backend may
complete jobs in **any order** — results are placed by index, and any
worker count yields identical sweeps.

Built-ins:

* ``serial`` — in-process loop (the ``workers=1`` path).
* ``thread`` — :class:`~concurrent.futures.ThreadPoolExecutor`; works with
  closures and benefits NumPy-heavy measures (which release the GIL).
* ``process`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  parallelism for pure-Python measures, requires a picklable module-level
  ``measure``.
* ``queue`` — the distributed work-queue coordinator
  (:mod:`repro.analysis.distributed_backend`): worker processes pull job
  chunks from a ``multiprocessing.Manager`` queue, optionally served over
  a socket so workers attach from other hosts.

Both pool backends collect futures with
:func:`~concurrent.futures.as_completed`, so one slow early sample never
serializes result collection.

A new backend plugs in the same way the built-ins do — register from its
own module::

    from repro.analysis.backends import register_backend

    @register_backend("cluster", description="fan jobs out over the host pool")
    def _cluster(measure, jobs, workers):
        ...
        yield job_index, sample

Example::

    >>> from repro.analysis.backends import get_backend, list_backends
    >>> [info.name for info in list_backends()]
    ['process', 'queue', 'serial', 'thread']
    >>> get_backend("serial").description
    'in-process loop; no pool overhead (workers ignored)'
"""

from __future__ import annotations

import importlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "BackendInfo",
    "BACKENDS",
    "register_backend",
    "get_backend",
    "list_backends",
]

#: ``runner(measure, jobs, workers)`` yields ``(job_index, sample)`` pairs,
#: in any order; ``jobs`` holds the keyword arguments of each measure call.
BackendRunner = Callable[
    [Callable[..., float], Sequence[Mapping[str, Any]], int],
    Iterator[tuple[int, float]],
]


@dataclass(frozen=True)
class BackendInfo:
    """One registered execution backend."""

    name: str
    description: str
    runner: BackendRunner


BACKENDS: dict[str, BackendInfo] = {}

# The queue backend lives in its own module (it drags multiprocessing
# machinery along) and self-registers at import, mirroring how engines
# self-register with repro.engine.registry.
_BUILTIN_MODULES = ("repro.analysis.distributed_backend",)
_builtins_loaded = False


def _load_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_backend(name: str, *, description: str):
    """Decorator registering a :data:`BackendRunner` under ``name``.

    Args
    ----
    name:
        Registry key, as passed to ``run_sweep(..., backend=name)``.
    description:
        One line for listings (README tables, ``list_backends``).

    Returns
    -------
    The decorator; it returns the runner unchanged.

    Raises
    ------
    ConfigurationError
        If ``name`` is already registered.
    """

    def deco(fn: BackendRunner) -> BackendRunner:
        if name in BACKENDS:
            raise ConfigurationError(f"backend {name!r} is already registered")
        BACKENDS[name] = BackendInfo(name=name, description=description, runner=fn)
        return fn

    return deco


def get_backend(name: str) -> BackendInfo:
    """Look up a registered backend by name.

    Args
    ----
    name:
        A registered backend name (``serial``, ``thread``, ``process``,
        ``queue``, or anything registered by third-party code).

    Returns
    -------
    The backend's :class:`BackendInfo`.

    Raises
    ------
    ConfigurationError
        If no backend of that name is registered.
    """
    _load_builtins()
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor backend {name!r}; registered backends: "
            f"{', '.join(sorted(BACKENDS))}"
        ) from None


def list_backends() -> list[BackendInfo]:
    """All registered backends in name order (built-ins loaded on demand)."""
    _load_builtins()
    return [BACKENDS[name] for name in sorted(BACKENDS)]


@register_backend("serial", description="in-process loop; no pool overhead (workers ignored)")
def _serial(measure, jobs, workers) -> Iterator[tuple[int, float]]:
    for idx, kwargs in enumerate(jobs):
        yield idx, float(measure(**kwargs))


def _pool(pool_cls, measure, jobs, workers) -> Iterator[tuple[int, float]]:
    with pool_cls(max_workers=workers) as pool:
        futures = {pool.submit(measure, **kwargs): idx for idx, kwargs in enumerate(jobs)}
        for future in as_completed(futures):
            yield futures[future], float(future.result())


@register_backend("thread", description="thread pool; closures ok, NumPy measures release the GIL")
def _thread(measure, jobs, workers) -> Iterator[tuple[int, float]]:
    yield from _pool(ThreadPoolExecutor, measure, jobs, workers)


@register_backend("process", description="process pool; true parallelism, measure must pickle")
def _process(measure, jobs, workers) -> Iterator[tuple[int, float]]:
    yield from _pool(ProcessPoolExecutor, measure, jobs, workers)
