"""Generic parameter-sweep harness.

Every experiment is a sweep: for each point of a parameter grid, run a
measurement function over several independent seeds and summarize.  This
module factors the repetition/seeding/summary plumbing out of the
individual experiment modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.stats import SummaryStats, summarize
from repro.errors import ConfigurationError
from repro.util.seeding import SeedStream

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: parameters, per-seed samples, and their summary."""

    params: Mapping[str, Any]
    samples: tuple[float, ...]
    summary: SummaryStats

    def __getitem__(self, key: str) -> Any:
        return self.params[key]


@dataclass
class SweepResult:
    """All grid points of one sweep."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        """Parameter values across points (in grid order)."""
        return [p.params[key] for p in self.points]

    def means(self) -> list[float]:
        """Mean sample per point."""
        return [p.summary.mean for p in self.points]

    def find(self, **conditions: Any) -> SweepPoint:
        """The unique point matching all given parameter values."""
        matches = [
            p for p in self.points if all(p.params.get(k) == v for k, v in conditions.items())
        ]
        if len(matches) != 1:
            raise ConfigurationError(f"{len(matches)} points match {conditions} in sweep {self.name!r}")
        return matches[0]


def run_sweep(
    name: str,
    grid: Iterable[Mapping[str, Any]],
    measure: Callable[..., float],
    *,
    repetitions: int = 10,
    seed: int = 0,
    confidence: float = 0.95,
) -> SweepResult:
    """Run ``measure(seed_sequence=..., **params)`` over a grid.

    ``measure`` receives every grid parameter as a keyword argument plus a
    ``rng_seed`` (an integer derived deterministically from the sweep seed,
    the point index, and the repetition index) and returns one float
    sample.  Repetitions are independent; points are independent.
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    result = SweepResult(name=name)
    stream = SeedStream(seed)
    for point_idx, params in enumerate(grid):
        samples = []
        for rep in range(repetitions):
            child = stream.next_seed()
            rng_seed = int(np.random.Generator(np.random.PCG64(child)).integers(0, 2**31 - 1))
            samples.append(float(measure(rng_seed=rng_seed, **params)))
        result.points.append(
            SweepPoint(
                params=dict(params),
                samples=tuple(samples),
                summary=summarize(samples, confidence),
            )
        )
    return result
