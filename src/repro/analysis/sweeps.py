"""Generic parameter-sweep harness.

Every experiment is a sweep: for each point of a parameter grid, run a
measurement function over several independent seeds and summarize.  This
module factors the repetition/seeding/summary plumbing out of the
individual experiment modules.

Seeding note: per-repetition ``rng_seed`` values are drawn directly from
the :class:`~repro.util.seeding.SeedStream` children via
``SeedSequence.generate_state`` (top 31 bits of the first word).  Earlier
versions built a throwaway ``np.random.Generator`` per repetition just to
draw one integer; dropping that round-trip changed the emitted seed values
once, here, in v1.1 — sweeps are still fully deterministic in the sweep
seed, but do not compare raw samples against pre-v1.1 runs.

Parallelism: ``run_sweep(..., workers=N)`` fans the (point, repetition)
samples out over a registered execution backend
(:mod:`repro.analysis.backends`): ``serial``, ``thread``, or ``process``
built in, distributed backends pluggable.  All seeds are derived up front
in grid order and every sample is placed by its (point, repetition) index,
so results are **identical** for any backend and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.backends import get_backend
from repro.analysis.stats import SummaryStats, summarize
from repro.errors import ConfigurationError
from repro.util.seeding import SeedStream

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: parameters, per-seed samples, and their summary."""

    params: Mapping[str, Any]
    samples: tuple[float, ...]
    summary: SummaryStats

    def __getitem__(self, key: str) -> Any:
        return self.params[key]


@dataclass
class SweepResult:
    """All grid points of one sweep."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        """Parameter values across points (in grid order)."""
        return [p.params[key] for p in self.points]

    def means(self) -> list[float]:
        """Mean sample per point."""
        return [p.summary.mean for p in self.points]

    def find(self, **conditions: Any) -> SweepPoint:
        """The unique point matching all given parameter values."""
        matches = [
            p for p in self.points if all(p.params.get(k) == v for k, v in conditions.items())
        ]
        if len(matches) != 1:
            raise ConfigurationError(f"{len(matches)} points match {conditions} in sweep {self.name!r}")
        return matches[0]


def _child_seed(stream: SeedStream) -> int:
    """One 31-bit repetition seed straight from the next stream child.

    No intermediate ``Generator`` is constructed; the child
    ``SeedSequence``'s own output stream is already uniform.
    """
    child = stream.next_seed()
    return int(child.generate_state(1, np.uint64)[0] >> 33)


def run_sweep(
    name: str,
    grid: Iterable[Mapping[str, Any]],
    measure: Callable[..., float],
    *,
    repetitions: int = 10,
    seed: int = 0,
    confidence: float = 0.95,
    workers: int = 1,
    executor: str = "thread",
) -> SweepResult:
    """Run ``measure(rng_seed=..., **params)`` over a grid.

    ``measure`` receives every grid parameter as a keyword argument plus a
    ``rng_seed`` (an integer derived deterministically from the sweep seed,
    the point index, and the repetition index) and returns one float
    sample.  Repetitions are independent; points are independent.

    ``workers`` > 1 evaluates the samples on the named ``executor`` backend
    (any name in :mod:`repro.analysis.backends`; ``"thread"`` and
    ``"process"`` built in).  Seeds are precomputed in grid order before
    any sample runs, so every backend and worker count yields identical
    results.
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    backend = get_backend(executor)  # validate the name even when serial
    if workers == 1:
        backend = get_backend("serial")
    grid_list = [dict(params) for params in grid]
    for params in grid_list:
        if "rng_seed" in params:
            raise ConfigurationError(
                "'rng_seed' is reserved for the derived per-repetition seed "
                "and cannot be a grid parameter"
            )
    stream = SeedStream(seed)
    seeds = [[_child_seed(stream) for _ in range(repetitions)] for _ in grid_list]

    jobs = [
        {"rng_seed": seeds[point_idx][rep], **params}
        for point_idx, params in enumerate(grid_list)
        for rep in range(repetitions)
    ]
    all_samples: list[list[float]] = [[0.0] * repetitions for _ in grid_list]
    for idx, sample in backend.runner(measure, jobs, workers):
        point_idx, rep = divmod(idx, repetitions)
        all_samples[point_idx][rep] = sample

    result = SweepResult(name=name)
    for params, samples in zip(grid_list, all_samples):
        result.points.append(
            SweepPoint(
                params=params,  # grid_list entries are fresh dicts, never reused
                samples=tuple(samples),
                summary=summarize(samples, confidence),
            )
        )
    return result
