"""Generic parameter-sweep harness.

Every experiment is a sweep: for each point of a parameter grid, run a
measurement function over several independent seeds and summarize.  This
module factors the repetition/seeding/summary plumbing out of the
individual experiment modules.

Seeding note: per-repetition ``rng_seed`` values are drawn directly from
the :class:`~repro.util.seeding.SeedStream` children via
``SeedSequence.generate_state`` (top 31 bits of the first word).  Earlier
versions built a throwaway ``np.random.Generator`` per repetition just to
draw one integer; dropping that round-trip changed the emitted seed values
once, here, in v1.1 — sweeps are still fully deterministic in the sweep
seed, but do not compare raw samples against pre-v1.1 runs.

Parallelism: ``run_sweep(..., workers=N)`` fans the (point, repetition)
samples out over a registered execution backend
(:mod:`repro.analysis.backends`): ``serial``, ``thread``, ``process``, and
the distributed work-queue ``queue`` backend built in, others pluggable.
All seeds are derived up front in grid order and every sample is placed by
its (point, repetition) index, so results are **identical** for any
backend and worker count.

Checkpoint/resume: ``run_sweep(..., checkpoint=path)`` journals every
completed job to ``path`` (a :class:`~repro.experiments.persist.SweepJournal`)
as results stream in; rerunning with ``resume=True`` replays the journaled
samples and computes only the jobs that never finished.  Because the
journal stores raw samples by job index, a resumed sweep is bit-identical
to an uninterrupted one — on any backend.

:func:`sweep_defaults` / :func:`set_sweep_defaults` install process-wide
defaults for ``backend``/``workers``/checkpointing, which is how the
experiment CLI's ``--backend``, ``--workers`` and ``--resume`` flags reach
every sweep an experiment runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.backends import get_backend
from repro.analysis.stats import SummaryStats, summarize
from repro.errors import ConfigurationError
from repro.util.deprecation import warn_deprecated
from repro.util.optionstate import OptionState
from repro.util.seeding import SeedStream

__all__ = [
    "SweepPoint",
    "SweepResult",
    "SweepDefaults",
    "run_sweep",
    "set_sweep_defaults",
    "sweep_defaults",
    "current_sweep_defaults",
]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: parameters, per-seed samples, and their summary."""

    params: Mapping[str, Any]
    samples: tuple[float, ...]
    summary: SummaryStats

    def __getitem__(self, key: str) -> Any:
        return self.params[key]


@dataclass
class SweepResult:
    """All grid points of one sweep."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def column(self, key: str) -> list[Any]:
        """Parameter values across points (in grid order).

        >>> res = run_sweep("s", [{"x": 3}, {"x": 1}],
        ...                 lambda rng_seed, x: float(x), repetitions=1)
        >>> res.column("x")
        [3, 1]
        """
        return [p.params[key] for p in self.points]

    def means(self) -> list[float]:
        """Mean sample per point (in grid order)."""
        return [p.summary.mean for p in self.points]

    def find(self, **conditions: Any) -> SweepPoint:
        """The unique point matching all given parameter values.

        Raises
        ------
        ConfigurationError
            When zero or several points match ``conditions``.
        """
        matches = [
            p for p in self.points if all(p.params.get(k) == v for k, v in conditions.items())
        ]
        if len(matches) != 1:
            raise ConfigurationError(f"{len(matches)} points match {conditions} in sweep {self.name!r}")
        return matches[0]


@dataclass(frozen=True)
class SweepDefaults:
    """Process-wide fallbacks applied when ``run_sweep`` callers omit them.

    ``backend``/``workers`` of ``None`` mean "keep the built-in default"
    (``thread`` / 1).  ``checkpoint_dir`` of ``None`` disables implicit
    checkpointing; when set, every named sweep journals to
    ``<checkpoint_dir>/<name>.sweep.jsonl`` unless the call passes its own
    ``checkpoint``.
    """

    backend: str | None = None
    workers: int | None = None
    checkpoint_dir: str | Path | None = None
    resume: bool = False


_DEFAULTS: OptionState[SweepDefaults] = OptionState(SweepDefaults(), "sweep default")


def current_sweep_defaults() -> SweepDefaults:
    """The defaults the next ``run_sweep`` call will fall back to."""
    return _DEFAULTS.current()


def set_sweep_defaults(**overrides: Any) -> SweepDefaults:
    """Replace fields of the process-wide :class:`SweepDefaults`.

    Args
    ----
    overrides:
        Any of ``backend``, ``workers``, ``checkpoint_dir``, ``resume``.

    Returns
    -------
    The new defaults.

    Raises
    ------
    ConfigurationError
        For an unknown field name.
    """
    return _DEFAULTS.set(**overrides)


def sweep_defaults(**overrides: Any):
    """Temporarily install sweep defaults (restored on exit).

    >>> from repro.analysis.sweeps import run_sweep, sweep_defaults
    >>> with sweep_defaults(backend="serial"):
    ...     res = run_sweep("d", [{"x": 1}], lambda rng_seed, x: float(x), repetitions=2)
    >>> res.means()
    [1.0]
    """
    return _DEFAULTS.override(**overrides)


def _child_seed(stream: SeedStream) -> int:
    """One 31-bit repetition seed straight from the next stream child.

    No intermediate ``Generator`` is constructed; the child
    ``SeedSequence``'s own output stream is already uniform.
    """
    child = stream.next_seed()
    return int(child.generate_state(1, np.uint64)[0] >> 33)


def _slug(name: str) -> str:
    """A filesystem-safe version of a sweep name."""
    return "".join(c if (c.isalnum() or c in "-_.") else "_" for c in name) or "sweep"


def _sweep_fingerprint(
    name: str,
    jobs: Sequence[Mapping[str, Any]],
    repetitions: int,
    seed: int,
    measure: Callable[..., float],
) -> dict[str, Any]:
    """The identity a checkpoint journal is pinned to.

    Hashes the fully expanded job list (grid parameters *and* derived
    seeds), so editing a grid value — not just its shape — invalidates a
    stale journal instead of silently replaying the old sweep's samples.
    The measure is identified by qualname: renaming it invalidates the
    journal (safe, loud), while an edit to its body is undetectable — the
    journal trusts that samples were produced by the measure named here.
    """
    payload = json.dumps([dict(job) for job in jobs], sort_keys=True, default=str)
    return {
        "name": name,
        "jobs": len(jobs),
        "repetitions": repetitions,
        "seed": seed,
        "grid": hashlib.sha256(payload.encode()).hexdigest()[:16],
        "measure": getattr(measure, "__qualname__", None) or repr(measure),
    }


def run_sweep(
    name: str,
    grid: Iterable[Mapping[str, Any]],
    measure: Callable[..., float],
    *,
    repetitions: int = 10,
    seed: int = 0,
    confidence: float = 0.95,
    workers: int | None = None,
    backend: str | None = None,
    executor: str | None = None,
    checkpoint: str | Path | None = None,
    resume: bool | None = None,
) -> SweepResult:
    """Run ``measure(rng_seed=..., **params)`` over a grid.

    ``measure`` receives every grid parameter as a keyword argument plus a
    ``rng_seed`` (an integer derived deterministically from the sweep seed,
    the point index, and the repetition index) and returns one float
    sample.  Repetitions are independent; points are independent.

    Args
    ----
    name:
        Sweep identity — shows up in results, errors, and the checkpoint
        fingerprint.
    grid:
        Mappings of grid parameters, one per point, evaluated in order.
    measure:
        ``measure(rng_seed=..., **params) -> float``.  Must be picklable
        (module-level) for the ``process`` and ``queue`` backends.
    repetitions:
        Independent samples per grid point (>= 1).
    seed:
        Root of the deterministic per-job seed derivation.
    confidence:
        Confidence level of each point's summary interval.
    workers:
        Parallel worker count (default 1, or the installed
        :class:`SweepDefaults`).  With 1 worker the pool backends shortcut
        to ``serial``; an explicitly requested ``queue`` backend is always
        honoured, and may take ``workers=0`` in served mode (all work done
        by remotely attached workers).
    backend:
        Execution backend name (see :func:`repro.analysis.backends.list_backends`;
        default ``thread``).  ``executor`` is the deprecated alias kept for
        pre-1.3 callers.
    checkpoint:
        Path of a :class:`~repro.experiments.persist.SweepJournal`.  Every
        completed job is journaled as results stream in; pass the same path
        with ``resume=True`` to continue a killed sweep without recomputing
        finished jobs.
    resume:
        Allow loading an existing journal at ``checkpoint``.  Without it, a
        pre-existing checkpoint file is an error (refusing to silently mix
        two sweeps).

    Returns
    -------
    A :class:`SweepResult` with one :class:`SweepPoint` per grid entry, in
    grid order.  Identical for every backend, worker count, and
    kill/resume schedule (the determinism invariant the backend tests
    enforce).

    Raises
    ------
    ConfigurationError
        For invalid repetitions/workers, an unknown backend, a reserved
        ``rng_seed`` grid key, conflicting ``backend``/``executor``, an
        un-``resume``-d existing checkpoint, or a checkpoint written by a
        different sweep.

    Example
    -------
    >>> res = run_sweep("square", [{"x": 2}, {"x": 3}],
    ...                 lambda rng_seed, x: float(x * x), repetitions=2)
    >>> res.means()
    [4.0, 9.0]
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    if backend is not None and executor is not None and backend != executor:
        raise ConfigurationError(
            f"conflicting backend={backend!r} and (deprecated alias) executor={executor!r}"
        )
    if executor is not None:
        warn_deprecated("run_sweep(executor=...)", "run_sweep(backend=...)")
    defaults = _DEFAULTS.current()
    backend_name = backend or executor or defaults.backend or "thread"
    if workers is None:
        workers = defaults.workers if defaults.workers is not None else 1
    if workers < 1 and not (workers == 0 and backend_name == "queue"):
        # queue alone accepts 0 local workers: served mode can run entirely
        # on remotely attached ones.
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    info = get_backend(backend_name)  # validate the name even when serial
    if workers == 1 and backend_name in ("thread", "process"):
        info = get_backend("serial")  # no pool overhead for a lone worker
    grid_list = [dict(params) for params in grid]
    for params in grid_list:
        if "rng_seed" in params:
            raise ConfigurationError(
                "'rng_seed' is reserved for the derived per-repetition seed "
                "and cannot be a grid parameter"
            )
    stream = SeedStream(seed)
    seeds = [[_child_seed(stream) for _ in range(repetitions)] for _ in grid_list]

    jobs = [
        {"rng_seed": seeds[point_idx][rep], **params}
        for point_idx, params in enumerate(grid_list)
        for rep in range(repetitions)
    ]

    if checkpoint is None and defaults.checkpoint_dir is not None:
        checkpoint = Path(defaults.checkpoint_dir) / f"{_slug(name)}.sweep.jsonl"
    if resume is None:
        resume = defaults.resume
    journal = None
    if checkpoint is not None:
        from repro.experiments.persist import SweepJournal

        fingerprint = _sweep_fingerprint(name, jobs, repetitions, seed, measure)
        path = Path(checkpoint)
        if path.exists():
            if not resume:
                raise ConfigurationError(
                    f"checkpoint {path} already exists; pass resume=True (CLI: --resume) "
                    "to continue it, or remove the file to start over"
                )
            journal = SweepJournal.resume(path, fingerprint)
        else:
            journal = SweepJournal.create(path, fingerprint)

    all_samples: list[list[float]] = [[0.0] * repetitions for _ in grid_list]

    def _place(idx: int, sample: float) -> None:
        point_idx, rep = divmod(idx, repetitions)
        all_samples[point_idx][rep] = sample

    try:
        completed = journal.completed if journal is not None else {}
        for idx, sample in completed.items():
            _place(idx, sample)
        pending = [idx for idx in range(len(jobs)) if idx not in completed]
        if pending:
            for local_idx, sample in info.runner(measure, [jobs[i] for i in pending], workers):
                idx = pending[local_idx]
                if journal is not None:
                    journal.record(idx, sample)  # journal first: a crash here re-runs the job
                _place(idx, sample)
    finally:
        if journal is not None:
            journal.close()

    result = SweepResult(name=name)
    for params, samples in zip(grid_list, all_samples):
        result.points.append(
            SweepPoint(
                params=params,  # grid_list entries are fresh dicts, never reused
                samples=tuple(samples),
                summary=summarize(samples, confidence),
            )
        )
    return result
