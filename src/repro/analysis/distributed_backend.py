"""The ``queue`` execution backend: a coordinator + worker-pool work queue.

This is the third leg of the scaling architecture (after the engine
registry and the unified run API): a backend for
:func:`repro.analysis.sweeps.run_sweep` where a **coordinator** process
shards the flat job list into chunks, feeds them to ``N`` worker processes
over a :class:`multiprocessing.Manager` queue, and collects
``(job_index, sample)`` pairs as they complete.  Because the sweep harness
precomputes every per-grid-point seed up front and places samples by index,
results are **bit-identical** to the ``serial`` backend at any worker
count and any chunking.

Two transport modes:

* **local** (default) — queues live in a :func:`multiprocessing.Manager`
  and workers are forked/spawned by the coordinator; the measure function
  is handed to the workers directly.
* **served** — set :func:`set_queue_options` (or the
  :func:`queue_options` context manager) with an ``address``; the
  coordinator serves the task/result queues on that TCP address via a
  :class:`~multiprocessing.managers.BaseManager`, and workers on *other
  hosts* attach with::

      python -m repro.analysis.distributed_backend \\
          --connect HOST:PORT --authkey SECRET

  Served tasks name the measure by its ``module:qualname`` import path, so
  in this mode the measure must be a module-level callable importable on
  every worker host (same repo checkout, same PYTHONPATH).

Checkpoint/resume is **not** implemented here: the sweep harness journals
completed job indices itself (see
:class:`repro.experiments.persist.SweepJournal`), so every backend —
including this one — gets ``run_sweep(..., checkpoint=..., resume=True)``
for free.

Example (single host)::

    >>> from repro.analysis.sweeps import run_sweep
    >>> def measure(rng_seed, x):
    ...     return float(rng_seed % 7 + x)
    >>> res = run_sweep("demo", [{"x": 1}], measure, repetitions=2,
    ...                 workers=2, backend="queue")
    >>> len(res.points)
    1
"""

from __future__ import annotations

import argparse
import importlib
import multiprocessing
import multiprocessing.managers
import queue as queue_mod
import sys
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.analysis.backends import register_backend
from repro.errors import ConfigurationError, ExperimentError
from repro.obs.registry import (
    OBS,
    clock as _obs_clock,
    counter as _obs_counter,
    gauge as _obs_gauge,
    histogram as _obs_histogram,
)
from repro.util.optionstate import OptionState

__all__ = [
    "QueueOptions",
    "set_queue_options",
    "queue_options",
    "current_queue_options",
    "main",
]


@dataclass(frozen=True)
class QueueOptions:
    """Tuning and transport knobs for the ``queue`` backend.

    Attributes
    ----------
    chunk_size:
        Jobs per task chunk.  ``None`` auto-sizes to roughly four chunks
        per worker (small enough for progress/checkpoint granularity,
        large enough to amortize queue round-trips).
    address:
        ``None`` for local Manager queues, or a ``(host, port)`` pair /
        ``"host:port"`` string to *serve* the queues over TCP so remote
        workers can attach.  Port 0 binds an ephemeral port (see
        ``on_listening``).
    authkey:
        Shared secret for the served manager (HMAC challenge, not
        encryption — run on a trusted network).
    remote_workers:
        How many externally attached workers to account for when served:
        the coordinator enqueues one shutdown sentinel per local *and*
        remote worker.
    on_listening:
        Optional callback invoked with the actual ``(host, port)`` once
        the served manager is listening — the hook scripts/tests use to
        launch workers against an ephemeral port.
    """

    chunk_size: int | None = None
    address: tuple[str, int] | str | None = None
    authkey: bytes = b"repro-sweep"
    remote_workers: int = 0
    on_listening: Callable[[tuple[str, int]], None] | None = None


_OPTIONS: OptionState[QueueOptions] = OptionState(QueueOptions(), "queue option")


def current_queue_options() -> QueueOptions:
    """The options the next ``queue``-backend run will use."""
    return _OPTIONS.current()


def set_queue_options(**overrides: Any) -> QueueOptions:
    """Replace fields of the module-wide :class:`QueueOptions`.

    Returns the new options.  Raises :class:`ConfigurationError` for an
    unknown field name.
    """
    return _OPTIONS.set(**overrides)


def queue_options(**overrides: Any):
    """Temporarily override queue options (restored on exit)."""
    return _OPTIONS.override(**overrides)


# --------------------------------------------------------------------------
# shared plumbing


def _parse_address(address: tuple[str, int] | str) -> tuple[str, int]:
    """Normalize ``"host:port"`` / ``(host, port)`` to a tuple."""
    if isinstance(address, str):
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigurationError(f"address {address!r} is not of the form host:port")
        return host, int(port)
    host, port = address
    return str(host), int(port)


def _chunk(jobs: Sequence[Mapping[str, Any]], chunk_size: int | None, workers: int):
    """Shard indexed jobs into ``(chunk_id, [(job_index, kwargs), ...])`` tasks."""
    indexed = list(enumerate(jobs))
    if chunk_size is None:
        chunk_size = max(1, -(-len(indexed) // max(1, workers * 4)))
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (cid, indexed[lo : lo + chunk_size])
        for cid, lo in enumerate(range(0, len(indexed), chunk_size))
    ]


def _measure_path(measure: Callable[..., float]) -> str:
    """The ``module:qualname`` import path of a served-mode measure."""
    module = getattr(measure, "__module__", None)
    qualname = getattr(measure, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or module == "__main__":
        raise ConfigurationError(
            "served queue mode needs a module-level measure importable on every "
            f"worker host; got {measure!r} (module={module!r}, qualname={qualname!r})"
        )
    return f"{module}:{qualname}"


def _resolve_measure(path: str) -> Callable[..., float]:
    """Inverse of :func:`_measure_path` (runs on the worker)."""
    module_name, _, qualname = path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def _run_chunk(measure, chunk) -> list[tuple[int, float]]:
    return [(idx, float(measure(**kwargs))) for idx, kwargs in chunk]


def _local_worker(task_q, result_q, measure) -> None:
    """Local worker loop: chunks in, ``("done", cid, pairs)`` out."""
    while True:
        task = task_q.get()
        if task is None:
            return
        cid, chunk = task
        try:
            result_q.put(("done", cid, _run_chunk(measure, chunk)))
        except BaseException as exc:  # surfaced (with traceback) by the coordinator
            result_q.put(("error", cid, f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))
            return


def _served_worker(task_q, result_q) -> int:
    """Served worker loop: tasks carry the measure's import path."""
    done = 0
    while True:
        task = task_q.get()
        if task is None:
            return done
        cid, measure_path, chunk = task
        try:
            measure = _resolve_measure(measure_path)
            result_q.put(("done", cid, _run_chunk(measure, chunk)))
            done += 1
        except BaseException as exc:
            result_q.put(("error", cid, f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))
            return done


def _attach_worker(host: str, port: int, authkey: bytes) -> int:
    """Connect to a served coordinator and work until the shutdown sentinel."""
    manager = _client_manager(host, port, authkey)
    return _served_worker(manager.get_task_queue(), manager.get_result_queue())


# The served queues live in the *server process*: the registered callables
# below run there (never in the coordinator, which talks through a client
# proxy like every worker).  Module-level singletons — not closures — so the
# registry survives pickling under the spawn start method (macOS/Windows).
_served_queues: dict[str, queue_mod.Queue] = {}


def _get_served_task_queue() -> queue_mod.Queue:
    return _served_queues.setdefault("task", queue_mod.Queue())


def _get_served_result_queue() -> queue_mod.Queue:
    return _served_queues.setdefault("result", queue_mod.Queue())


class _ServerManager(multiprocessing.managers.BaseManager):
    """Server side: owns the queues (one fresh server process per sweep)."""


_ServerManager.register("get_task_queue", callable=_get_served_task_queue)
_ServerManager.register("get_result_queue", callable=_get_served_result_queue)


class _ClientManager(multiprocessing.managers.BaseManager):
    """Client side: proxies to a served coordinator's queues."""


_ClientManager.register("get_task_queue")
_ClientManager.register("get_result_queue")


def _client_manager(host: str, port: int, authkey: bytes) -> _ClientManager:
    manager = _ClientManager(address=(host, port), authkey=authkey)
    manager.connect()
    return manager


# Registry families (repro/obs): chunk progress and straggler lag — the
# gap between successive chunk completions, whose tail is exactly the
# time the coordinator sat waiting on its slowest worker.
_OBS_CHUNKS = _obs_counter(
    "repro_sweep_chunks_total", "sweep chunks collected by the queue backend"
)
_OBS_OUTSTANDING = _obs_gauge(
    "repro_sweep_chunks_outstanding", "sweep chunks dispatched but not yet collected"
)
_OBS_STRAGGLER = _obs_histogram(
    "repro_sweep_chunk_gap_seconds",
    "gap between successive chunk completions (straggler lag)",
)


def _collect(result_q, n_chunks: int, procs: list) -> Iterator[tuple[int, float]]:
    """Drain ``n_chunks`` results, watching for dead workers and errors."""
    outstanding = n_chunks
    last_done = _obs_clock() if OBS.on else 0.0
    while outstanding:
        try:
            kind, cid, payload = result_q.get(timeout=1.0)
        except queue_mod.Empty:
            if procs and not any(p.is_alive() for p in procs):
                raise ExperimentError(
                    "queue backend: all local workers exited with "
                    f"{outstanding} chunk(s) outstanding"
                ) from None
            continue
        if kind == "error":
            raise ExperimentError(f"queue backend: worker failed on chunk {cid}:\n{payload}")
        outstanding -= 1
        if OBS.on:
            now = _obs_clock()
            _OBS_STRAGGLER.observe(now - last_done)
            last_done = now
            _OBS_CHUNKS.inc()
            _OBS_OUTSTANDING.set(outstanding)
        yield from payload


@register_backend(
    "queue",
    description="coordinator + worker processes over a Manager work queue; multi-host via --connect",
)
def _queue_backend(measure, jobs, workers) -> Iterator[tuple[int, float]]:
    """Run ``jobs`` through the work-queue coordinator (see module docs)."""
    opts = _OPTIONS.current()
    if opts.address is None:
        yield from _run_local(measure, jobs, workers, opts)
    else:
        yield from _run_served(measure, jobs, workers, opts)


def _run_local(measure, jobs, workers, opts: QueueOptions) -> Iterator[tuple[int, float]]:
    if workers < 1:
        raise ConfigurationError(
            "queue backend: workers=0 is only valid in served mode "
            "(queue_options(address=...)) where remote workers attach"
        )
    tasks = _chunk(jobs, opts.chunk_size, workers)
    with multiprocessing.Manager() as manager:
        task_q, result_q = manager.Queue(), manager.Queue()
        for task in tasks:
            task_q.put(task)
        for _ in range(workers):
            task_q.put(None)
        procs = [
            multiprocessing.Process(
                target=_local_worker, args=(task_q, result_q, measure), daemon=True
            )
            for _ in range(workers)
        ]
        for p in procs:
            p.start()
        try:
            yield from _collect(result_q, len(tasks), procs)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5)


def _run_served(measure, jobs, workers, opts: QueueOptions) -> Iterator[tuple[int, float]]:
    if workers + opts.remote_workers < 1:
        raise ConfigurationError(
            "served queue mode needs at least one worker (local workers + remote_workers)"
        )
    measure_path = _measure_path(measure)
    host, port = _parse_address(opts.address)
    manager = _ServerManager(address=(host, port), authkey=opts.authkey)
    manager.start()
    try:
        actual = manager.address
        if opts.on_listening is not None:
            opts.on_listening(actual)
        total_workers = workers + opts.remote_workers
        tasks = _chunk(jobs, opts.chunk_size, total_workers)
        client = _client_manager(actual[0], actual[1], opts.authkey)
        served_task_q, served_result_q = client.get_task_queue(), client.get_result_queue()
        for cid, chunk in tasks:
            served_task_q.put((cid, measure_path, chunk))
        for _ in range(total_workers):
            served_task_q.put(None)
        procs = [
            multiprocessing.Process(
                target=_attach_worker, args=(actual[0], actual[1], opts.authkey), daemon=True
            )
            for _ in range(workers)
        ]
        for p in procs:
            p.start()
        try:
            # Liveness supervision only makes sense when the local workers
            # are the *only* workers: with remote workers attached, a local
            # worker that drains its sentinel and exits is healthy, not a
            # stall — and remote progress is invisible to us anyway.
            supervised = procs if opts.remote_workers == 0 else []
            yield from _collect(served_result_q, len(tasks), supervised)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=5)
    finally:
        manager.shutdown()


# --------------------------------------------------------------------------
# worker CLI


def build_parser() -> argparse.ArgumentParser:
    """Construct the worker CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.distributed_backend",
        description="Attach a sweep worker to a served queue-backend coordinator.",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address the coordinator is serving its queues on",
    )
    parser.add_argument(
        "--authkey",
        default="repro-sweep",
        help="shared secret of the served manager (default: repro-sweep)",
    )
    parser.add_argument(
        "--retry-seconds",
        type=float,
        default=0.0,
        help="keep retrying the connection this long before giving up",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Worker entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    host, port = _parse_address(args.connect)
    deadline = time.monotonic() + args.retry_seconds
    while True:
        try:
            done = _attach_worker(host, port, args.authkey.encode())
            break
        except ConnectionError:
            if time.monotonic() >= deadline:
                print(f"error: cannot connect to {host}:{port}", file=sys.stderr)
                return 2
            time.sleep(0.2)
        except multiprocessing.AuthenticationError:
            print(f"error: authkey rejected by {host}:{port}", file=sys.stderr)
            return 2
        except EOFError:
            # The coordinator finished its sweep and shut the manager down
            # between our connect and the next queue op: nothing left to do.
            print("coordinator gone; exiting", file=sys.stderr)
            return 0
    print(f"worker done: {done} chunk(s) processed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    # `python -m repro.analysis.distributed_backend` executes this module as
    # __main__; alias the canonical name so that importing the worker's
    # measure (whose module may import this one, directly or through the
    # backend registry) does not re-execute the body and re-register "queue".
    sys.modules.setdefault("repro.analysis.distributed_backend", sys.modules[__name__])
    raise SystemExit(main())
