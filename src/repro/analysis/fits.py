"""Growth-shape fitting: which curve does a sweep follow?

The reproduction's headline results are *shapes* — "grows like log n",
"grows linearly in k", "collapses to a constant" — so the experiments need
an objective way to classify a measured curve.  This module fits the three
model families the theorems predict,

* constant    ``y = c``
* logarithmic ``y = a·log2(x) + b``
* linear      ``y = a·x + b``
* power law   ``y = b·x^a``  (fit in log-log space)

by least squares and reports R² for each, plus a convenience classifier
that picks the best-fitting family with a tolerance band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FitResult", "fit_constant", "fit_log", "fit_linear", "fit_power", "classify_growth"]


@dataclass(frozen=True)
class FitResult:
    """One fitted model: family name, parameters, and goodness of fit."""

    family: str
    params: tuple[float, ...]
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model."""
        x = np.asarray(x, dtype=np.float64)
        if self.family == "constant":
            return np.full_like(x, self.params[0])
        if self.family == "log":
            a, b = self.params
            return a * np.log2(x) + b
        if self.family == "linear":
            a, b = self.params
            return a * x + b
        if self.family == "power":
            a, b = self.params
            return b * x**a
        raise ConfigurationError(f"unknown family {self.family}")  # pragma: no cover


def _validate(xs: Sequence[float], ys: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.ndim != 1 or x.shape != y.shape or x.size < 2:
        raise ConfigurationError("need 1-D xs/ys of equal length >= 2")
    return x, y


def _r_squared(y: np.ndarray, pred: np.ndarray) -> float:
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_constant(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Best constant model ``y = mean(y)``."""
    x, y = _validate(xs, ys)
    c = float(y.mean())
    return FitResult("constant", (c,), _r_squared(y, np.full_like(y, c)))


def fit_log(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Least-squares ``y = a·log2(x) + b`` (requires positive x)."""
    x, y = _validate(xs, ys)
    if np.any(x <= 0):
        raise ConfigurationError("log fit requires positive x")
    design = np.vstack([np.log2(x), np.ones_like(x)]).T
    (a, b), *_ = np.linalg.lstsq(design, y, rcond=None)
    return FitResult("log", (float(a), float(b)), _r_squared(y, a * np.log2(x) + b))


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Least-squares ``y = a·x + b``."""
    x, y = _validate(xs, ys)
    design = np.vstack([x, np.ones_like(x)]).T
    (a, b), *_ = np.linalg.lstsq(design, y, rcond=None)
    return FitResult("linear", (float(a), float(b)), _r_squared(y, a * x + b))


def fit_power(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Least-squares power law ``y = b·x^a`` via log-log regression.

    Requires strictly positive data.  R² is reported in the *original*
    space so families are comparable.
    """
    x, y = _validate(xs, ys)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ConfigurationError("power fit requires positive data")
    design = np.vstack([np.log(x), np.ones_like(x)]).T
    (a, logb), *_ = np.linalg.lstsq(design, np.log(y), rcond=None)
    b = float(np.exp(logb))
    return FitResult("power", (float(a), b), _r_squared(y, b * x ** float(a)))


def classify_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    min_r2: float = 0.8,
    constant_cv: float = 0.05,
) -> str:
    """Name the best-fitting growth family.

    Constant-ness is decided first by the coefficient of variation
    (``std/|mean| <= constant_cv``) — R² cannot express "flat" because the
    constant model's residuals *are* the total variance.  The remaining
    families (log before linear before power, i.e. flattest first) compete
    on R² with a ``0.02`` parsimony band, so noise never upgrades a
    logarithmic curve to a power law.  Returns ``"constant" | "log" |
    "linear" | "power" | "unclassified"``.
    """
    x, y = _validate(xs, ys)
    mean = float(np.abs(y).mean())
    if mean == 0.0 or float(y.std()) / max(mean, 1e-300) <= constant_cv:
        return "constant"
    fits: list[FitResult] = []
    if np.all(x > 0):
        fits.append(fit_log(x, y))
    fits.append(fit_linear(x, y))
    if np.all(x > 0) and np.all(y > 0):
        fits.append(fit_power(x, y))
    best = max(fits, key=lambda f: f.r_squared)
    if best.r_squared < min_r2:
        return "unclassified"
    for f in fits:  # parsimony: earlier (flatter) families win near-ties
        if best.r_squared - f.r_squared <= 0.02:
            return f.family
    return best.family  # pragma: no cover
