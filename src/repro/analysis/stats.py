"""Statistics for randomized message counts.

The protocols are Las Vegas: answers are exact, message counts are random
variables.  Experiments repeat runs over independent seeds and report
means with confidence intervals and empirical tails; this module holds the
(scipy-backed) machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

from repro.errors import ConfigurationError

__all__ = [
    "SummaryStats",
    "summarize",
    "mean_confidence_interval",
    "bootstrap_ci",
    "tail_probability",
]


@dataclass(frozen=True)
class SummaryStats:
    """Mean/stdev/extremes/CI of a sample of counts."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    def format(self, unit: str = "msgs") -> str:
        """``12.3 ± 0.4 msgs  [n=200]`` style rendering."""
        half = (self.ci_high - self.ci_low) / 2
        return f"{self.mean:.2f} ± {half:.2f} {unit}  [n={self.count}]"


def _as_sample(samples: Sequence[float] | np.ndarray) -> np.ndarray:
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("samples must be a non-empty 1-D sequence")
    return arr


def mean_confidence_interval(
    samples: Sequence[float] | np.ndarray, confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, lo, hi)`` two-sided Student-t interval for the mean.

    A single sample yields a degenerate interval (lo = hi = mean).
    """
    arr = _as_sample(samples)
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0,1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1 or np.allclose(arr, arr[0]):
        return mean, mean, mean
    sem = float(sps.sem(arr))
    half = sem * float(sps.t.ppf((1 + confidence) / 2, arr.size - 1))
    return mean, mean - half, mean + half


def summarize(samples: Sequence[float] | np.ndarray, confidence: float = 0.95) -> SummaryStats:
    """Full summary of a sample."""
    arr = _as_sample(samples)
    mean, lo, hi = mean_confidence_interval(arr, confidence)
    return SummaryStats(
        count=int(arr.size),
        mean=mean,
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=lo,
        ci_high=hi,
        confidence=confidence,
    )


def bootstrap_ci(
    samples: Sequence[float] | np.ndarray,
    statistic=np.mean,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap interval for an arbitrary statistic.

    Used for ratio statistics (competitive ratios) where t-intervals on the
    raw mean are not appropriate.
    """
    arr = _as_sample(samples)
    if arr.size == 1:
        v = float(statistic(arr))
        return v, v
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1 - confidence) / 2
    return float(np.quantile(stats, alpha)), float(np.quantile(stats, 1 - alpha))


def tail_probability(samples: Sequence[float] | np.ndarray, threshold: float) -> float:
    """Empirical ``P[X > threshold]``."""
    arr = _as_sample(samples)
    return float(np.mean(arr > threshold))
