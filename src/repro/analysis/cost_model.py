"""Predictive message-cost model for Algorithm 1 runs.

Theorem 3.3's proof decomposes a run's cost into three mechanisms; this
module turns that decomposition into a *quantitative* predictor using the
exact Lemma-4.1 expectations instead of the O-notation:

* each **reset** costs ``k+1`` coordinator-initiated MaximumProtocol sweeps
  over shrinking participant sets (with ``N = n``), one start broadcast per
  sweep, round broadcasts, and the final bound broadcast;
* each **midpoint handler** costs the violators' protocols plus one
  coordinator-initiated completion protocol and the midpoint broadcast;
* quiet steps cost nothing.

The model takes a run's *event counts* (resets, handler calls, violator
totals) and predicts the expected message total; tests and experiments
check measured totals sit within a modest band of the prediction.  This is
the practical payoff of the analysis: capacity planning for a deployment
("how much uplink will n sensors at this churn rate consume?").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.exact import lemma41_expected_messages
from repro.core.events import MonitorResult, StepKind
from repro.errors import ConfigurationError

__all__ = ["CostBreakdown", "predict_messages", "predict_from_result"]

#: Mean round-broadcasts per protocol execution is bounded by the number of
#: running-maximum improvements, itself at most the node-message count; the
#: measured ratio hovers near 0.75 across n — used as the model's broadcast
#: factor.
_BROADCAST_FACTOR = 0.75

#: The Lemma 4.1 sums are ~2x loose against measured protocol costs (E1
#: shows measured/bound ≈ 0.5 uniformly in n and profile).  Multiplying the
#: bound-mode prediction by this constant gives a point estimate; the
#: default prediction stays an upper bound.
MEASURED_EFFICIENCY = 0.52


@dataclass(frozen=True)
class CostBreakdown:
    """Predicted expected messages, split by mechanism.

    :attr:`total` is an *upper-bound* prediction (built from Lemma 4.1
    sums); :attr:`point_estimate` applies the measured calibration
    constant for a central prediction.
    """

    reset_cost: float
    handler_cost: float
    violation_cost: float

    @property
    def total(self) -> float:
        """Total predicted expected messages (upper-bound mode)."""
        return self.reset_cost + self.handler_cost + self.violation_cost

    @property
    def point_estimate(self) -> float:
        """Calibrated central prediction (``total × MEASURED_EFFICIENCY``)."""
        return self.total * MEASURED_EFFICIENCY


def _protocol_cost(participants: int, upper_bound: int, *, initiated: bool) -> float:
    """Expected messages of one protocol execution (nodes + broadcasts)."""
    if participants <= 0:
        return 0.0
    node_msgs = lemma41_expected_messages(participants, upper_bound=max(participants, upper_bound))
    start = 1.0 if initiated else 0.0
    return start + node_msgs * (1.0 + _BROADCAST_FACTOR)


def predict_messages(
    n: int,
    k: int,
    *,
    resets: int,
    midpoint_handlers: int,
    mean_top_violators: float = 1.0,
    mean_bottom_violators: float = 1.0,
) -> CostBreakdown:
    """Predict expected total messages from event counts.

    ``resets`` includes the t=0 initialization.  Violator means default to
    one per side per event (the common case: a single node drifts across
    the bound).
    """
    if n < 1 or not 1 <= k <= n:
        raise ConfigurationError(f"need 1 <= k <= n, got k={k}, n={n}")
    if resets < 0 or midpoint_handlers < 0:
        raise ConfigurationError("event counts must be >= 0")
    if k == n:
        return CostBreakdown(0.0, 0.0, 0.0)

    # Reset: k+1 sweeps over n, n-1, ..., n-k participants (N = n each),
    # all coordinator-initiated, plus the final bound broadcast.
    sweeps = sum(
        _protocol_cost(n - j, n, initiated=True) for j in range(k + 1)
    )
    per_reset = sweeps + 1.0
    reset_cost = resets * per_reset

    # Every handler event (midpoint *and* reset steps) first runs the
    # violators' spontaneous protocols...
    events = resets - 1 + midpoint_handlers  # t=0 init has no violators
    violation_cost = max(0, events) * (
        _protocol_cost(max(1, round(mean_top_violators)), max(1, k), initiated=False) * 0.5
        + _protocol_cost(max(1, round(mean_bottom_violators)), max(1, n - k), initiated=False) * 0.5
    ) * 2.0  # both sides contribute on average half the events each

    # ...and a midpoint handler completes the missing side (size k or n-k;
    # model with the average) and broadcasts the new midpoint.
    completion = 0.5 * _protocol_cost(k, k, initiated=True) + 0.5 * _protocol_cost(
        n - k, n - k, initiated=True
    )
    handler_cost = midpoint_handlers * (completion + 1.0) + max(0, resets - 1) * completion

    return CostBreakdown(
        reset_cost=reset_cost, handler_cost=handler_cost, violation_cost=violation_cost
    )


def predict_from_result(result: MonitorResult) -> CostBreakdown:
    """Predict a run's cost from its own event log (model-vs-measured).

    Uses the realized event counts and mean violator sizes, so comparing
    :attr:`CostBreakdown.total` against ``result.total_messages`` isolates
    the *protocol-cost* part of the model from workload randomness.
    """
    midpoints = sum(1 for e in result.events if e.kind is StepKind.HANDLER_MIDPOINT)
    violent = [e for e in result.events if e.kind is not StepKind.INIT_RESET]
    mean_top = (
        sum(e.top_violators for e in violent) / len(violent) if violent else 1.0
    )
    mean_bottom = (
        sum(e.bottom_violators for e in violent) / len(violent) if violent else 1.0
    )
    return predict_messages(
        result.n,
        result.k,
        resets=result.resets,
        midpoint_handlers=midpoints,
        mean_top_violators=max(1.0, mean_top),
        mean_bottom_violators=max(1.0, mean_bottom),
    )
