"""Exact evaluation of the paper's Lemma 4.1 / Theorem 4.2 quantities.

Lemma 4.1 bounds the probability that the node at rank ``i`` (0-based here;
the paper's ``i``-th largest) sends during one MaximumProtocol execution:

    P[X_i = 1]  <=  1/N  +  sum_{r=1..log N}  (2^r / N) · (1 − 2^{r−1}/N)^i

and Theorem 4.2 sums this over nodes and telescopes the geometric series to
``2·log2 N + 1``.  This module evaluates the *pre-simplification* sums
exactly, giving a tighter analytical curve than the closed form — the E1
table can then show::

    measured mean  <=  Lemma-4.1 sum  <=  2·log2 N + 1

which verifies not just the theorem's endpoint but its intermediate step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.util.intmath import ceil_log2

__all__ = [
    "lemma41_send_probability",
    "lemma41_expected_messages",
    "theorem42_closed_form",
]


def _round_probs(upper_bound: int) -> np.ndarray:
    """Send probabilities ``min(1, 2^r/N)`` for rounds ``r = 0..log2 N``."""
    if upper_bound < 1:
        raise ConfigurationError(f"N must be >= 1, got {upper_bound}")
    n_rounds = ceil_log2(upper_bound) + 1 if upper_bound > 1 else 1
    return np.minimum(1.0, 2.0 ** np.arange(n_rounds) / upper_bound)


def lemma41_send_probability(rank: int, upper_bound: int) -> float:
    """The Lemma 4.1 upper bound on ``P[node at rank i sends]``.

    ``rank`` is 0-based from the top: rank 0 is the maximum (which always
    has bound ≥ its true send probability of ~1 summed over rounds).
    Evaluates ``1/N + Σ_{r≥1} (2^r/N)·(1 − 2^{r−1}/N)^rank`` with the same
    round set as the implementation (``r`` up to ``ceil(log2 N)``).
    """
    if rank < 0:
        raise ConfigurationError(f"rank must be >= 0, got {rank}")
    probs = _round_probs(upper_bound)
    total = float(probs[0])  # the r = 0 term: 1/N (or 1 when N = 1)
    for r in range(1, probs.size):
        survive = (1.0 - probs[r - 1]) ** rank
        total += float(probs[r]) * survive
    return min(1.0, total)


def lemma41_expected_messages(n: int, upper_bound: int | None = None) -> float:
    """Exact Lemma-4.1 sum ``Σ_i P[X_i = 1]`` over ``n`` participants.

    This is the quantity Theorem 4.2 upper-bounds by ``2·log2 N + 1``; it is
    strictly tighter for every finite ``N`` (the theorem extends the
    geometric series to infinity when telescoping).
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    N = int(upper_bound) if upper_bound is not None else n
    if N < n:
        raise ConfigurationError(f"upper_bound {N} must be >= n {n}")
    probs = _round_probs(N)
    ranks = np.arange(n, dtype=np.float64)
    total = float(probs[0]) * n if N == 1 else n * (1.0 / N)
    for r in range(1, probs.size):
        survive = (1.0 - probs[r - 1]) ** ranks
        total += float(probs[r]) * float(survive.sum())
    return float(min(total, n))


def theorem42_closed_form(upper_bound: int) -> float:
    """The telescoped Theorem 4.2 bound ``2·log2 N + 1`` (clamped at N=1)."""
    if upper_bound < 1:
        raise ConfigurationError(f"N must be >= 1, got {upper_bound}")
    if upper_bound == 1:
        return 1.0
    return 2.0 * float(np.log2(upper_bound)) + 1.0
