"""Analysis toolkit: theory-side formulas and measurement-side statistics.

* :mod:`repro.analysis.bounds` — the paper's theoretical quantities
  (Theorem 3.3 / 4.2 / 4.3 bounds),
* :mod:`repro.analysis.stats` — mean/CI/tail estimation for randomized
  message counts,
* :mod:`repro.analysis.records` — harmonic numbers and left-to-right-maxima
  statistics (the Theorem 4.3 lower-bound machinery),
* :mod:`repro.analysis.competitive` — competitive ratios against the
  offline optimum,
* :mod:`repro.analysis.sweeps` — a generic parameter-sweep harness used by
  all experiments (with checkpoint/resume journaling),
* :mod:`repro.analysis.backends` — the pluggable execution backends
  (serial/thread/process/queue) behind ``run_sweep``,
* :mod:`repro.analysis.distributed_backend` — the distributed work-queue
  backend: coordinator + worker processes, multi-host via a served queue.
"""

from repro.analysis.backends import (
    BackendInfo,
    get_backend,
    list_backends,
    register_backend,
)
from repro.analysis.bounds import (
    competitive_bound,
    max_protocol_expected_bound,
    max_protocol_lower_bound,
    ordered_conjecture_bound,
)
from repro.analysis.competitive import CompetitiveOutcome, competitive_outcome
from repro.analysis.cost_model import CostBreakdown, predict_from_result, predict_messages
from repro.analysis.exact import (
    lemma41_expected_messages,
    lemma41_send_probability,
    theorem42_closed_form,
)
from repro.analysis.fits import FitResult, classify_growth, fit_linear, fit_log, fit_power
from repro.analysis.records import expected_records, harmonic
from repro.analysis.stats import (
    SummaryStats,
    bootstrap_ci,
    mean_confidence_interval,
    summarize,
    tail_probability,
)
from repro.analysis.sweeps import (
    SweepResult,
    run_sweep,
    set_sweep_defaults,
    sweep_defaults,
)

__all__ = [
    "max_protocol_expected_bound",
    "max_protocol_lower_bound",
    "competitive_bound",
    "ordered_conjecture_bound",
    "CompetitiveOutcome",
    "CostBreakdown",
    "predict_from_result",
    "predict_messages",
    "lemma41_expected_messages",
    "lemma41_send_probability",
    "theorem42_closed_form",
    "FitResult",
    "classify_growth",
    "fit_linear",
    "fit_log",
    "fit_power",
    "competitive_outcome",
    "harmonic",
    "expected_records",
    "SummaryStats",
    "summarize",
    "mean_confidence_interval",
    "bootstrap_ci",
    "tail_probability",
    "SweepResult",
    "run_sweep",
    "set_sweep_defaults",
    "sweep_defaults",
    "BackendInfo",
    "register_backend",
    "get_backend",
    "list_backends",
]
