"""Record (left-to-right maxima) statistics for the Theorem 4.3 lower bound.

The lower-bound proof maps the cost of any deterministic sequential-probe
algorithm on a uniformly random permutation to the root-to-maximum path in
a random binary search tree.  The number of *answers* such an algorithm
receives equals the number of left-to-right maxima of the probe sequence,
whose distribution is classical:

* ``E[records over n] = H_n`` (the n-th harmonic number),
* ``Var = H_n - H_n^(2)``,

giving the concrete ``Θ(log n)`` comparator used by experiment E3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["harmonic", "harmonic_second", "expected_records", "records_in", "record_variance"]


def harmonic(n: int) -> float:
    """``H_n = 1 + 1/2 + ... + 1/n``."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return float(np.sum(1.0 / np.arange(1, n + 1))) if n else 0.0


def harmonic_second(n: int) -> float:
    """Second-order harmonic number ``H_n^(2) = sum 1/i^2``."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    return float(np.sum(1.0 / np.arange(1, n + 1) ** 2)) if n else 0.0


def expected_records(n: int) -> float:
    """Expected left-to-right maxima of a uniform random permutation."""
    return harmonic(n)


def record_variance(n: int) -> float:
    """Variance of the record count: ``H_n - H_n^(2)``."""
    return harmonic(n) - harmonic_second(n)


def records_in(sequence: np.ndarray) -> int:
    """Count left-to-right maxima of a sequence (strict records)."""
    arr = np.asarray(sequence)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("sequence must be non-empty 1-D")
    running = np.maximum.accumulate(arr)
    is_record = np.empty(arr.size, dtype=bool)
    is_record[0] = True
    is_record[1:] = arr[1:] > running[:-1]
    return int(np.count_nonzero(is_record))
