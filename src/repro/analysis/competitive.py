"""Competitive-ratio measurement against the offline optimum.

Theorem 3.3 charges the online algorithm against ``r + 1`` where ``r`` is
the number of OPT communications — i.e. against the number of maximal
intervals with a fixed feasible filter set (``OptResult.epochs``).  The
measured competitive ratio of one run is therefore::

    ratio = total_online_messages / opt_epochs

and the theorem predicts ``E[ratio] = O((log Δ + k) · log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bounds import competitive_bound
from repro.api import RunSpec, run as run_spec
from repro.baselines.offline_opt import OptResult, opt_result
from repro.core.monitor import MonitorConfig
from repro.streams.base import WorkloadResult
from repro.util.validation import check_k, check_matrix

__all__ = ["CompetitiveOutcome", "competitive_outcome"]


@dataclass(frozen=True)
class CompetitiveOutcome:
    """One instance's competitive measurement.

    ``normalized`` is ``ratio / bound`` with ``bound`` the Theorem 4.4 shape
    ``(log2 Δ + k)·log2 n``; Theorem 4.4 predicts this stays below a
    universal constant across instances.
    """

    n: int
    k: int
    steps: int
    delta: int
    online_messages: int
    opt_epochs: int

    @property
    def ratio(self) -> float:
        """Measured competitive ratio (online messages per OPT epoch)."""
        return self.online_messages / self.opt_epochs

    @property
    def bound(self) -> float:
        """The Theorem 4.4 bound shape for this instance."""
        return competitive_bound(self.delta, self.k, self.n)

    @property
    def normalized(self) -> float:
        """ratio / bound — should be O(1) across instances."""
        return self.ratio / self.bound


def competitive_outcome(
    values: np.ndarray,
    k: int,
    *,
    seed=0,
    config: MonitorConfig | None = None,
    engine: str = "faithful",
    opt: OptResult | None = None,
) -> CompetitiveOutcome:
    """Run Algorithm 1 and OPT on one instance; return the measured ratio.

    ``engine`` names any registered engine (all are message-count
    identical at fixed seed); ``opt`` may be supplied when the caller
    already segmented the instance (e.g. when sweeping seeds over the same
    workload).
    """
    values = check_matrix(values)
    k, n = check_k(k, values.shape[1])
    result = run_spec(RunSpec(values, k=k, seed=seed, engine=engine, config=config))
    if opt is None:
        opt = opt_result(values, k)
    delta = WorkloadResult(spec=None, values=values).delta(k) if k < n else 0
    return CompetitiveOutcome(
        n=n,
        k=k,
        steps=values.shape[0],
        delta=delta,
        online_messages=result.total_messages,
        opt_epochs=opt.epochs,
    )
