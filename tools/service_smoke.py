"""End-to-end smoke of the streaming session service (the CI service job).

Drives a real ``python -m repro.service --serve`` subprocess the way a
deployment would:

1. start the server, attach a client, open ``--sessions`` concurrent
   sessions across the workload catalog;
2. stream ``--rows`` observations into every session (bulk preload plus a
   row-by-row tail), then assert every session's top-k answer *and*
   protocol message count are bit-identical to the offline
   ``TopKMonitor.run`` on the same values;
3. SIGKILL the server mid-service, assert clients observe the outage,
   restart, reconnect, and re-drive a batch on the fresh server;
4. durable mode: restart a ``--checkpoint-dir`` server after a SIGKILL and
   assert clients resume the *same* sessions — every resumed session's
   final top-k and message count bit-identical to an uninterrupted
   offline run over the full stream;
5. shut the server down via the wire ``shutdown`` op and assert a clean
   exit code.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--sessions 100] [--rows 40]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.monitor import TopKMonitor  # noqa: E402
from repro.errors import ServiceError  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.streams import get_workload, list_workloads  # noqa: E402

ENV = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}


def spawn_server(*extra: str) -> tuple[subprocess.Popen, str]:
    """Start a service subprocess on an ephemeral port; returns its address."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--serve", "127.0.0.1:0",
         "--batch-linger", "0.02", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=ENV,
    )
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        raise SystemExit(f"server did not announce an address (got {line!r})")
    address = line.removeprefix("listening on ")
    print(f"server pid={proc.pid} at {address}")
    return proc, address


def drive_sessions(address: str, sessions: int, rows: int, n: int, k: int, seed0: int) -> None:
    """Open many sessions, stream the catalog into them, verify bit-identity."""
    catalog = list_workloads()
    with ServiceClient(address, timeout=120) as client:
        cases = []
        for i in range(sessions):
            name = catalog[i % len(catalog)]
            values = get_workload(name, n, rows, seed=i).generate()
            handle = client.create_session(n=n, k=k, seed=seed0 + i)
            cases.append((handle, name, values))
        # Bulk preload half the stream, then the row-by-row tail.
        for handle, _, values in cases:
            handle.feed_rows(values[: rows // 2])
        for t in range(rows // 2, rows):
            for handle, _, values in cases:
                handle.feed(values[t])
        mismatches = 0
        for i, (handle, name, values) in enumerate(cases):
            offline = TopKMonitor(n=n, k=k, seed=seed0 + i).run(values)
            state = handle.query(wait=True)
            ok = (
                state["topk"] == offline.topk_history[-1].tolist()
                and state["messages"] == offline.total_messages
            )
            if not ok:
                mismatches += 1
                print(f"MISMATCH session {handle.id} ({name}): {state} vs "
                      f"{offline.topk_history[-1].tolist()}/{offline.total_messages}")
        metrics = client.metrics()
        print(
            f"verified {sessions} sessions x {rows} rows: "
            f"{metrics['rows_processed']} rows stepped "
            f"({metrics['rows_batched']} batched, {metrics['rows_lookahead']} lookahead, "
            f"{metrics['rows_quiet']} quiet), "
            f"{metrics['protocol_messages']} protocol messages, "
            f"p99 step latency {metrics['step_latency_p99_us']}us"
        )
        if mismatches:
            raise SystemExit(f"{mismatches} sessions diverged from the offline run")
        if sessions >= 2 and metrics["rows_batched"] + metrics["rows_lookahead"] == 0:
            raise SystemExit("neither the batched nor the lookahead stepping path engaged")


def checkpoint_restore_phase(sessions: int, rows: int, n: int, k: int, seed0: int) -> None:
    """Kill a ``--checkpoint-dir`` server mid-stream; resume on restart."""
    catalog = list_workloads()
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as ckpt_dir:
        proc, address = spawn_server("--checkpoint-dir", ckpt_dir)
        cases = []
        try:
            with ServiceClient(address, timeout=120) as client:
                for i in range(sessions):
                    name = catalog[i % len(catalog)]
                    values = get_workload(name, n, rows, seed=1000 + i).generate()
                    handle = client.create_session(n=n, k=k, seed=seed0 + i)
                    cases.append((handle.id, name, values))
                for sid, _, values in cases:
                    client.session(sid).feed_rows(values[: rows // 2])
                for sid, _, _ in cases:
                    client.session(sid).query(wait=True)
                info = client.checkpoint()  # durability barrier before the kill
                print(f"checkpointed {info['sessions']} sessions to {info['dir']}")
            proc.kill()
            proc.wait(timeout=30)
            print("durable server killed (SIGKILL)")
        finally:
            if proc.poll() is None:
                proc.kill()

        proc, address = spawn_server("--checkpoint-dir", ckpt_dir)
        try:
            line = proc.stdout.readline().strip()
            if not line.startswith("restored "):
                raise SystemExit(f"restarted server did not announce a restore (got {line!r})")
            print(f"server: {line}")
            mismatches = 0
            with ServiceClient(address, timeout=120) as client:
                resumed = set(client.session_ids())
                if resumed != {sid for sid, _, _ in cases}:
                    raise SystemExit(
                        f"restored session ids diverged: {len(resumed)} vs {len(cases)}"
                    )
                for i, (sid, name, values) in enumerate(cases):
                    handle = client.session(sid)
                    state = handle.query()
                    if state["time"] != rows // 2 - 1:
                        raise SystemExit(
                            f"session {sid} resumed at t={state['time']}, "
                            f"expected {rows // 2 - 1}"
                        )
                    handle.feed_rows(values[rows // 2 :])
                    state = handle.query(wait=True)
                    offline = TopKMonitor(n=n, k=k, seed=seed0 + i).run(values)
                    ok = (
                        state["topk"] == offline.topk_history[-1].tolist()
                        and state["messages"] == offline.total_messages
                    )
                    if not ok:
                        mismatches += 1
                        print(f"MISMATCH resumed session {sid} ({name}): {state} vs "
                              f"{offline.topk_history[-1].tolist()}/{offline.total_messages}")
                if mismatches:
                    raise SystemExit(f"{mismatches} resumed sessions diverged from offline runs")
                print(f"resumed {len(cases)} sessions across the kill: all bit-identical")
                client.shutdown()
            code = proc.wait(timeout=30)
            if code != 0:
                raise SystemExit(f"durable server exited {code} after shutdown op")
        finally:
            if proc.poll() is None:
                proc.kill()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=100, help="concurrent sessions")
    parser.add_argument("--rows", type=int, default=40, help="rows per session")
    parser.add_argument("--n", type=int, default=8, help="nodes per session")
    parser.add_argument("--k", type=int, default=2, help="top-k size")
    args = parser.parse_args()

    # --- phase 1+2: full service drive ----------------------------------
    proc, address = spawn_server()
    try:
        drive_sessions(address, args.sessions, args.rows, args.n, args.k, seed0=500)

        # --- phase 3: kill -9, observe the outage, restart ---------------
        proc.kill()
        proc.wait(timeout=30)
        print("server killed (SIGKILL)")
        try:
            ServiceClient(address, timeout=3).ping()
            raise SystemExit("dead server still answered a ping")
        except ServiceError:
            print("outage observed by client (connection refused)")
    finally:
        if proc.poll() is None:
            proc.kill()

    proc, address = spawn_server()
    try:
        # Fresh server starts empty: sessions are in-memory, so gateways
        # re-create and re-drive (documented recovery model).
        drive_sessions(address, max(2, args.sessions // 4), args.rows, args.n, args.k, seed0=900)

        # --- phase 4: kill/restore with --checkpoint-dir ------------------
        checkpoint_restore_phase(
            max(2, args.sessions // 4), args.rows, args.n, args.k, seed0=1300
        )

        # --- phase 5: clean shutdown over the wire -----------------------
        with ServiceClient(address) as client:
            client.shutdown()
        code = proc.wait(timeout=30)
        if code != 0:
            raise SystemExit(f"server exited {code} after shutdown op")
        print("clean shutdown: exit code 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            raise SystemExit("server had to be killed after shutdown request")
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"(elapsed: {time.perf_counter() - start:.1f}s)")
    raise SystemExit(code)
