"""End-to-end smoke of the streaming session service (the CI service job).

Drives a real ``python -m repro.service --serve`` subprocess the way a
deployment would:

1. start the server, attach a client, open ``--sessions`` concurrent
   sessions across the workload catalog;
2. stream ``--rows`` observations into every session (bulk preload plus a
   row-by-row tail), then assert every session's top-k answer *and*
   protocol message count are bit-identical to the offline
   ``TopKMonitor.run`` on the same values;
3. SIGKILL the server mid-service, assert clients observe the outage,
   restart, reconnect, and re-drive a batch on the fresh server;
4. durable mode: restart a ``--checkpoint-dir`` server after a SIGKILL and
   assert clients resume the *same* sessions — every resumed session's
   final top-k and message count bit-identical to an uninterrupted
   offline run over the full stream;
5. shut the server down via the wire ``shutdown`` op and assert a clean
   exit code.

``--fault-profile NAME`` (the CI chaos-smoke job) runs a hostile variant
instead: a durable server is garbage-framed (non-UTF-8 bytes, broken
JSON, an oversized line), client connections are dropped mid-stream on a
seeded schedule derived from the named
:func:`repro.faults.fault_profile`, and the server is SIGKILLed once
mid-stream and restarted on the same port.  The clients ride their
retry/resume path through all of it, and the run asserts **zero session
loss**: every session survives with its final top-k and message count
bit-identical to an uninterrupted offline run.

``--workers N`` (the CI fleet-smoke job) runs the multi-process fleet
variant instead: a ``--serve --workers N`` router subprocess shards the
sessions across N workers, and with ``--kill-worker`` the busiest worker
is SIGKILLed (by pid, from outside) mid-stream — the hot standby must
promote, the router must replay its journal, and the run asserts zero
session loss plus bit-identical final answers and exactly one recorded
failover.

``--wire binary`` runs every phase over the negotiated binary framing
(``--wire jsonl``, the default, keeps the line-delimited debug path) —
the CI smoke jobs run both legs as a matrix, so every guarantee above is
proven per framing.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--sessions 100] [--rows 40]
    PYTHONPATH=src python tools/service_smoke.py --fault-profile lossy
    PYTHONPATH=src python tools/service_smoke.py --workers 3 --kill-worker
    PYTHONPATH=src python tools/service_smoke.py --wire binary

Every phase cross-checks the server-side ``rows_processed`` counter
against the rows the phase actually fed.  ``--trace-export FILE`` turns
observability on (``REPRO_OBS=1`` in every spawned server), harvests each
phase's spans over the ``obs`` wire op, and writes them to FILE as JSONL;
with ``--kill-worker`` it additionally asserts that replayed rows carry
the trace id of the client push that originally delivered them.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.monitor import TopKMonitor  # noqa: E402
from repro.errors import ServiceError  # noqa: E402
from repro.faults import FAULT_PROFILES, fault_profile  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.client import RetryPolicy  # noqa: E402
from repro.streams import get_workload, list_workloads  # noqa: E402

ENV = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}

#: Set from ``--server-log-dir``: every spawned server's stderr (crash
#: tracebacks, asyncio errors) is written to ``server-NN.log`` in here so a
#: failing CI run can upload them as artifacts.  ``None`` keeps the old
#: behaviour (stderr on an unread pipe).
LOG_DIR: Path | None = None
_SERVER_SEQ = 0

#: Set from ``--trace-export``: observability is switched on (here and,
#: via ``REPRO_OBS``, in every spawned server) and each phase's spans are
#: harvested over the ``obs`` wire op into this JSONL file at exit.
TRACE_EXPORT: Path | None = None
_SPANS: list[dict] = []

#: Set from ``--wire``: the framing every phase's clients negotiate.
WIRE = "jsonl"


def make_client(address, **kwargs) -> ServiceClient:
    """A phase client on the smoke's selected wire framing."""
    return ServiceClient(address, wire=WIRE, **kwargs)


def check_rows_processed(metrics: dict, fed: int, *, exact: bool = True,
                         phase: str = "smoke") -> None:
    """Assert the server-side row counter matches what we actually fed.

    Phases that restart a server from a checkpoint use ``exact=False``:
    the restarted process only counts rows stepped since the restore, and
    retry/replay paths may legitimately step more than the minimum.
    """
    got = int(metrics["rows_processed"])
    if exact and got != fed:
        raise SystemExit(f"{phase}: rows_processed {got} != rows fed {fed}")
    if not exact and got < fed:
        raise SystemExit(f"{phase}: rows_processed {got} < minimum rows fed {fed}")
    relation = "==" if exact else ">="
    print(f"{phase}: rows_processed {got} {relation} rows fed {fed}")


def harvest_obs(client: ServiceClient, phase: str) -> dict | None:
    """Pull one obs payload when tracing; accumulates spans for export."""
    if TRACE_EXPORT is None:
        return None
    payload = client.obs()
    _SPANS.extend({**span, "smoke_phase": phase} for span in payload["spans"])
    return payload


def export_traces() -> None:
    if TRACE_EXPORT is None:
        return
    TRACE_EXPORT.parent.mkdir(parents=True, exist_ok=True)
    with TRACE_EXPORT.open("w", encoding="utf-8") as fh:
        for span in _SPANS:
            fh.write(json.dumps(span, sort_keys=True) + "\n")
    print(f"exported {len(_SPANS)} trace spans to {TRACE_EXPORT}")


def spawn_server(*extra: str, bind: str = "127.0.0.1:0") -> tuple[subprocess.Popen, str]:
    """Start a service subprocess (ephemeral port by default); returns its address."""
    global _SERVER_SEQ
    argv = [sys.executable, "-m", "repro.service", "--serve", bind,
            "--batch-linger", "0.02", *extra]
    stderr_target = subprocess.PIPE
    log_path = None
    if LOG_DIR is not None:
        LOG_DIR.mkdir(parents=True, exist_ok=True)
        _SERVER_SEQ += 1
        log_path = LOG_DIR / f"server-{_SERVER_SEQ:02d}.log"
        stderr_target = log_path.open("w")
        stderr_target.write(f"# argv: {' '.join(argv)}\n")
        stderr_target.flush()
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=stderr_target,
        text=True,
        env=ENV,
    )
    if log_path is not None:
        stderr_target.close()  # the child owns the fd now
    line = proc.stdout.readline().strip()
    if not line.startswith("listening on "):
        proc.kill()
        raise SystemExit(f"server did not announce an address (got {line!r})")
    address = line.removeprefix("listening on ")
    suffix = f" (stderr -> {log_path})" if log_path is not None else ""
    print(f"server pid={proc.pid} at {address}{suffix}")
    return proc, address


def drive_sessions(address: str, sessions: int, rows: int, n: int, k: int, seed0: int) -> None:
    """Open many sessions, stream the catalog into them, verify bit-identity."""
    catalog = list_workloads()
    with make_client(address, timeout=120) as client:
        cases = []
        for i in range(sessions):
            name = catalog[i % len(catalog)]
            values = get_workload(name, n, rows, seed=i).generate()
            handle = client.create_session(n=n, k=k, seed=seed0 + i)
            cases.append((handle, name, values))
        # Bulk preload half the stream, then the row-by-row tail.
        for handle, _, values in cases:
            handle.feed_rows(values[: rows // 2])
        for t in range(rows // 2, rows):
            for handle, _, values in cases:
                handle.feed(values[t])
        mismatches = 0
        for i, (handle, name, values) in enumerate(cases):
            offline = TopKMonitor(n=n, k=k, seed=seed0 + i).run(values)
            state = handle.query(wait=True)
            ok = (
                state["topk"] == offline.topk_history[-1].tolist()
                and state["messages"] == offline.total_messages
            )
            if not ok:
                mismatches += 1
                print(f"MISMATCH session {handle.id} ({name}): {state} vs "
                      f"{offline.topk_history[-1].tolist()}/{offline.total_messages}")
        metrics = client.metrics()
        print(
            f"verified {sessions} sessions x {rows} rows: "
            f"{metrics['rows_processed']} rows stepped "
            f"({metrics['rows_batched']} batched, {metrics['rows_lookahead']} lookahead, "
            f"{metrics['rows_quiet']} quiet), "
            f"{metrics['protocol_messages']} protocol messages, "
            f"p99 step latency {metrics['step_latency_p99_us']}us"
        )
        if mismatches:
            raise SystemExit(f"{mismatches} sessions diverged from the offline run")
        if sessions >= 2 and metrics["rows_batched"] + metrics["rows_lookahead"] == 0:
            raise SystemExit("neither the batched nor the lookahead stepping path engaged")
        check_rows_processed(metrics, sessions * rows, phase="drive")
        harvest_obs(client, "drive")


def checkpoint_restore_phase(sessions: int, rows: int, n: int, k: int, seed0: int) -> None:
    """Kill a ``--checkpoint-dir`` server mid-stream; resume on restart."""
    catalog = list_workloads()
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as ckpt_dir:
        proc, address = spawn_server("--checkpoint-dir", ckpt_dir)
        cases = []
        try:
            with make_client(address, timeout=120) as client:
                for i in range(sessions):
                    name = catalog[i % len(catalog)]
                    values = get_workload(name, n, rows, seed=1000 + i).generate()
                    handle = client.create_session(n=n, k=k, seed=seed0 + i)
                    cases.append((handle.id, name, values))
                for sid, _, values in cases:
                    client.session(sid).feed_rows(values[: rows // 2])
                for sid, _, _ in cases:
                    client.session(sid).query(wait=True)
                info = client.checkpoint()  # durability barrier before the kill
                print(f"checkpointed {info['sessions']} sessions to {info['dir']}")
            proc.kill()
            proc.wait(timeout=30)
            print("durable server killed (SIGKILL)")
        finally:
            if proc.poll() is None:
                proc.kill()

        proc, address = spawn_server("--checkpoint-dir", ckpt_dir)
        try:
            line = proc.stdout.readline().strip()
            if not line.startswith("restored "):
                raise SystemExit(f"restarted server did not announce a restore (got {line!r})")
            print(f"server: {line}")
            mismatches = 0
            with make_client(address, timeout=120) as client:
                resumed = set(client.session_ids())
                if resumed != {sid for sid, _, _ in cases}:
                    raise SystemExit(
                        f"restored session ids diverged: {len(resumed)} vs {len(cases)}"
                    )
                for i, (sid, name, values) in enumerate(cases):
                    handle = client.session(sid)
                    state = handle.query()
                    if state["time"] != rows // 2 - 1:
                        raise SystemExit(
                            f"session {sid} resumed at t={state['time']}, "
                            f"expected {rows // 2 - 1}"
                        )
                    handle.feed_rows(values[rows // 2 :])
                    state = handle.query(wait=True)
                    offline = TopKMonitor(n=n, k=k, seed=seed0 + i).run(values)
                    ok = (
                        state["topk"] == offline.topk_history[-1].tolist()
                        and state["messages"] == offline.total_messages
                    )
                    if not ok:
                        mismatches += 1
                        print(f"MISMATCH resumed session {sid} ({name}): {state} vs "
                              f"{offline.topk_history[-1].tolist()}/{offline.total_messages}")
                if mismatches:
                    raise SystemExit(f"{mismatches} resumed sessions diverged from offline runs")
                print(f"resumed {len(cases)} sessions across the kill: all bit-identical")
                # The restarted server stepped exactly the tails we fed it.
                check_rows_processed(
                    client.metrics(), len(cases) * (rows - rows // 2),
                    phase="checkpoint-restore",
                )
                harvest_obs(client, "checkpoint-restore")
                client.shutdown()
            code = proc.wait(timeout=30)
            if code != 0:
                raise SystemExit(f"durable server exited {code} after shutdown op")
        finally:
            if proc.poll() is None:
                proc.kill()


def garbage_frames(address: str) -> None:
    """Throw slow/partial/garbage/oversized frames at the server raw.

    Every frame must earn a structured error reply (or, for the oversized
    one, at worst a reply followed by *that connection* closing) — and the
    server must answer a healthy client afterwards.
    """
    host, _, port = address.rpartition(":")
    with socket.create_connection((host, int(port)), timeout=30) as raw:
        f = raw.makefile("rwb")
        # Non-UTF-8 garbage: must answer bad_json, not kill the reader task.
        f.write(b"\xff\xfe\x00garbage\xff\n")
        f.flush()
        reply = json.loads(f.readline())
        assert not reply["ok"] and reply["code"] == "bad_json", reply
        # Broken JSON on the same (still healthy) connection.
        f.write(b"{this is not json\n")
        f.flush()
        reply = json.loads(f.readline())
        assert not reply["ok"] and reply["code"] == "bad_json", reply
        # Valid JSON, wrong shape.
        f.write(b'"not an object"\n')
        f.flush()
        reply = json.loads(f.readline())
        assert not reply["ok"] and reply["code"] == "bad_request", reply
        # A slow partial frame: a fragment, a pause, then the rest.
        f.write(b'{"op": "pi')
        f.flush()
        time.sleep(0.2)
        f.write(b'ng"}\n')
        f.flush()
        reply = json.loads(f.readline())
        assert reply["ok"], reply
        # Oversized frame (> the 1 MiB line limit): error reply, then the
        # server may close only this connection.
        try:
            f.write(b"[" + b"1," * (1 << 20) + b"1]\n")
            f.flush()
            line = f.readline()
            if line:
                reply = json.loads(line)
                assert not reply["ok"], reply
        except OSError:
            pass  # the server closed this connection mid-write: acceptable
    if WIRE == "binary":
        # The binary leg also garbage-frames the negotiated protocol:
        # bad magic must earn one bad_frame reply and cost only this
        # connection; a truncated frame must close silently.
        from repro.service import wire as _wire

        with socket.create_connection((host, int(port)), timeout=30) as raw:
            f = raw.makefile("rwb")
            f.write((json.dumps(_wire.hello_payload("binary")) + "\n").encode())
            f.flush()
            if not _wire.accepts_binary(json.loads(f.readline())):
                raise SystemExit("server refused binary hello in garbage phase")
            f.write(b"\xde\xad\xbe\xef\x00\x00\x00\x00")
            f.flush()
            kind, payload = _wire.read_frame_blocking(f)
            reply = _wire.decode_reply(kind, payload)
            assert not reply["ok"] and reply["code"] == "bad_frame", reply
        with socket.create_connection((host, int(port)), timeout=30) as raw:
            f = raw.makefile("rwb")
            f.write((json.dumps(_wire.hello_payload("binary")) + "\n").encode())
            f.flush()
            json.loads(f.readline())
            body = _wire.encode_json({"op": "ping"})
            f.write(body[:-2])  # frame promised two more bytes
            f.flush()
    # The server itself must have survived all of it.
    with make_client(address, timeout=30) as probe:
        if not probe.ping():
            raise SystemExit("server unhealthy after garbage frames")
    print("garbage frames: structured errors, connection-local damage only")


def fault_phase(profile: str, sessions: int, rows: int, n: int, k: int, seed0: int) -> None:
    """The chaos smoke: drops + garbage + one mid-stream worker kill.

    Connection drops follow a seeded schedule derived from the named fault
    profile's plan, so two runs inject identical chaos.  Success = zero
    session loss and bit-identical final answers.
    """
    plan = fault_profile(profile, n=n, steps=rows)
    rng = plan.rng()
    drop_p = max(plan.uplink.drop, 0.10)  # even 'clean' drops some links here
    catalog = list_workloads()
    kill_at = rows // 2
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as ckpt_dir:
        proc, address = spawn_server("--checkpoint-dir", ckpt_dir)
        port = address.rpartition(":")[2]
        retry = RetryPolicy(attempts=10, connect_timeout=5.0, backoff=0.2, backoff_max=2.0)
        client = make_client(address, timeout=120, retry=retry)
        try:
            garbage_frames(address)
            cases = []
            for i in range(sessions):
                name = catalog[i % len(catalog)]
                values = get_workload(name, n, rows, seed=2000 + i).generate()
                handle = client.create_session(n=n, k=k, seed=seed0 + i)
                cases.append((handle, name, values))
            created = {handle.id for handle, _, _ in cases}
            drops = kills = 0
            for t in range(rows):
                if t == kill_at:
                    client.checkpoint()  # durability barrier, then murder
                    proc.kill()
                    proc.wait(timeout=30)
                    proc, address = spawn_server(
                        "--checkpoint-dir", ckpt_dir, bind=f"127.0.0.1:{port}"
                    )
                    kills += 1
                elif rng.random() < drop_p:
                    client.drop_connection()  # next op rides retry/resume
                    drops += 1
                for handle, _, values in cases:
                    handle.feed(values[t])
            # Zero session loss: every created session is still live.
            survivors = set(client.session_ids())
            if survivors != created:
                raise SystemExit(
                    f"session loss: {len(created - survivors)} of {len(created)} "
                    f"sessions gone after the chaos run"
                )
            mismatches = 0
            for i, (handle, name, values) in enumerate(cases):
                state = handle.query(wait=True)
                offline = TopKMonitor(n=n, k=k, seed=seed0 + i).run(values)
                ok = (
                    state["topk"] == offline.topk_history[-1].tolist()
                    and state["messages"] == offline.total_messages
                )
                if not ok:
                    mismatches += 1
                    print(f"MISMATCH chaos session {handle.id} ({name}): {state} vs "
                          f"{offline.topk_history[-1].tolist()}/{offline.total_messages}")
            if mismatches:
                raise SystemExit(f"{mismatches} sessions diverged under profile {profile!r}")
            print(
                f"chaos profile {profile!r}: {sessions} sessions x {rows} rows survived "
                f"{drops} connection drops + {kills} worker kill(s): "
                f"zero session loss, all bit-identical"
            )
            # The post-kill server stepped at least every row past the
            # durability barrier (resume replays may step more).
            check_rows_processed(
                client.metrics(), sessions * (rows - kill_at),
                exact=False, phase=f"chaos[{profile}]",
            )
            harvest_obs(client, f"chaos[{profile}]")
            client.shutdown()
            code = proc.wait(timeout=30)
            if code != 0:
                raise SystemExit(f"server exited {code} after chaos shutdown")
        finally:
            client.close()
            if proc.poll() is None:
                proc.kill()


def _check_obs_top(address: str) -> None:
    """The acceptance view: ``repro.obs top --once`` against the live fleet
    must show the failover-latency metric the kill just produced."""
    out = subprocess.run(
        [sys.executable, "-m", "repro.obs", "top", address, "--once"],
        capture_output=True, text=True, timeout=120, env=ENV,
    )
    if out.returncode != 0:
        raise SystemExit(f"obs top failed: {out.stderr.strip()[-400:]}")
    if "failover latency mean" not in out.stdout:
        raise SystemExit("obs top did not show the failover latency metric")
    print("obs top --once: failover latency visible on the dashboard")


def _check_trace_continuity(spans: list[dict]) -> None:
    """Replayed rows must carry the trace id of their original push."""
    pushed = {s["trace"] for s in spans if s["name"] == "router.feed"}
    replayed = [
        s for s in spans
        if s["name"] == "server.feed" and s.get("attrs", {}).get("replay")
    ]
    if not replayed:
        raise SystemExit("no replayed feed spans recorded across the failover")
    if not any(s["trace"] in pushed for s in replayed):
        raise SystemExit("replayed spans lost their original push trace ids")
    kept = sum(1 for s in replayed if s["trace"] in pushed)
    print(f"trace continuity: {kept}/{len(replayed)} replayed span(s) "
          f"carry their original push trace id")


def fleet_phase(
    workers: int, sessions: int, rows: int, n: int, k: int,
    seed0: int, kill_worker: bool,
) -> None:
    """The fleet smoke: a ``--workers N`` router subprocess, optionally
    with one worker SIGKILLed (by pid, from outside) mid-stream.

    Success = the same bar as every other phase: zero session loss and
    final answers bit-identical to the offline monitor — plus, after a
    kill, exactly one recorded failover and a whole fleet again.
    """
    catalog = list_workloads()
    proc, address = spawn_server("--workers", str(workers))
    try:
        line = proc.stdout.readline().strip()
        if not line.startswith("fleet: "):
            raise SystemExit(f"router did not announce its fleet (got {line!r})")
        print(f"server: {line}")
        retry = RetryPolicy(attempts=10, connect_timeout=5.0, backoff=0.2, backoff_max=2.0)
        with make_client(address, timeout=120, retry=retry) as client:
            cases = []
            for i in range(sessions):
                name = catalog[i % len(catalog)]
                values = get_workload(name, n, rows, seed=3000 + i).generate()
                handle = client.create_session(n=n, k=k, seed=seed0 + i)
                cases.append((handle, name, values))
            created = {handle.id for handle, _, _ in cases}
            topology = client.fleet()
            busy = sum(1 for w in topology["workers"] if w["sessions"])
            print(f"fleet topology: {len(topology['workers'])} workers, "
                  f"{busy} hosting sessions, standby {'up' if topology['standby'] else 'DOWN'}")
            if busy < min(workers, 2):
                raise SystemExit("sharding failed: sessions did not spread across workers")
            kill_at = rows // 2 if kill_worker else None
            kills = 0
            for t in range(rows):
                if t == kill_at:
                    victim = max(topology["workers"], key=lambda w: w["sessions"])
                    os.kill(victim["pid"], 9)
                    kills += 1
                    print(f"worker {victim['slot']} (pid {victim['pid']}, "
                          f"{victim['sessions']} sessions) killed (SIGKILL)")
                for handle, _, values in cases:
                    handle.feed(values[t])
            survivors = set(client.session_ids())
            if survivors != created:
                raise SystemExit(
                    f"session loss: {len(created - survivors)} of {len(created)} "
                    f"sessions gone after the fleet run"
                )
            mismatches = 0
            for i, (handle, name, values) in enumerate(cases):
                state = handle.query(wait=True)
                offline = TopKMonitor(n=n, k=k, seed=seed0 + i).run(values)
                ok = (
                    state["topk"] == offline.topk_history[-1].tolist()
                    and state["messages"] == offline.total_messages
                )
                if not ok:
                    mismatches += 1
                    print(f"MISMATCH fleet session {handle.id} ({name}): {state} vs "
                          f"{offline.topk_history[-1].tolist()}/{offline.total_messages}")
            if mismatches:
                raise SystemExit(f"{mismatches} fleet sessions diverged from offline runs")
            metrics = client.metrics()
            fleet = metrics["fleet"]
            if kill_worker:
                if fleet["failovers"] != 1:
                    raise SystemExit(f"expected exactly 1 failover, saw {fleet['failovers']}")
                latency = fleet["failover_latency_ms"]
                print(f"failover: {latency['count']} promotion(s), "
                      f"mean {latency['mean']}ms, {fleet['rows_replayed']} rows replayed")
            after = client.fleet()
            if len(after["workers"]) != workers:
                raise SystemExit(
                    f"fleet not whole: {len(after['workers'])} of {workers} workers up"
                )
            if kill_worker:
                # A promoted standby only counts rows stepped since its
                # restore, so the fleet aggregate is a lower bound.
                check_rows_processed(
                    metrics, sessions * (rows - kill_at), exact=False, phase="fleet-kill"
                )
                _check_obs_top(address)
            else:
                check_rows_processed(metrics, sessions * rows, phase="fleet")
            payload = harvest_obs(client, "fleet")
            if payload is not None and kill_worker:
                _check_trace_continuity(payload["spans"])
            print(
                f"fleet {workers}w: {sessions} sessions x {rows} rows, "
                f"{metrics['rows_processed']} rows stepped across the fleet, "
                f"{kills} worker kill(s): zero session loss, all bit-identical"
            )
            client.shutdown()
        code = proc.wait(timeout=60)
        if code != 0:
            raise SystemExit(f"router exited {code} after shutdown op")
        print("clean fleet shutdown: exit code 0")
    finally:
        if proc.poll() is None:
            proc.kill()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=100, help="concurrent sessions")
    parser.add_argument("--rows", type=int, default=40, help="rows per session")
    parser.add_argument("--n", type=int, default=8, help="nodes per session")
    parser.add_argument("--k", type=int, default=2, help="top-k size")
    parser.add_argument(
        "--wire", choices=("jsonl", "binary"), default="jsonl",
        help="framing every phase's clients negotiate (default jsonl, "
        "the debug path; binary exercises the packed frame protocol)",
    )
    parser.add_argument(
        "--fault-profile", choices=FAULT_PROFILES, default=None,
        help="run the chaos smoke under this fault profile instead of the standard phases",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run the fleet smoke against a --workers N router instead of "
        "the standard phases (default 1: standard single-server smoke)",
    )
    parser.add_argument(
        "--kill-worker", action="store_true",
        help="with --workers: SIGKILL the busiest worker mid-stream and "
        "require a clean failover (zero loss, bit-identical answers)",
    )
    parser.add_argument(
        "--server-log-dir", type=Path, default=None, metavar="DIR",
        help="write each spawned server's stderr to DIR/server-NN.log "
        "(CI uploads these as artifacts when the job fails)",
    )
    parser.add_argument(
        "--trace-export", type=Path, default=None, metavar="FILE",
        help="enable observability (REPRO_OBS=1 in every spawned server) and "
        "export each phase's trace spans to FILE as JSONL",
    )
    args = parser.parse_args()

    global LOG_DIR, TRACE_EXPORT, WIRE
    LOG_DIR = args.server_log_dir
    TRACE_EXPORT = args.trace_export
    WIRE = args.wire
    print(f"wire framing: {WIRE}")
    if TRACE_EXPORT is not None:
        from repro import obs

        obs.enable()  # clients mint trace ids for their pushes
        ENV["REPRO_OBS"] = "1"  # spawned servers/fleets record spans

    if args.fault_profile is not None:
        fault_phase(
            args.fault_profile, max(2, args.sessions // 10), args.rows,
            args.n, args.k, seed0=1700,
        )
        export_traces()
        print("service chaos smoke OK")
        return 0

    if args.workers > 1:
        fleet_phase(
            args.workers, max(2, args.sessions // 5), args.rows,
            args.n, args.k, seed0=3500, kill_worker=args.kill_worker,
        )
        export_traces()
        print("service fleet smoke OK")
        return 0

    # --- phase 1+2: full service drive ----------------------------------
    proc, address = spawn_server()
    try:
        drive_sessions(address, args.sessions, args.rows, args.n, args.k, seed0=500)

        # --- phase 3: kill -9, observe the outage, restart ---------------
        proc.kill()
        proc.wait(timeout=30)
        print("server killed (SIGKILL)")
        try:
            ServiceClient(address, timeout=3).ping()
            raise SystemExit("dead server still answered a ping")
        except ServiceError:
            print("outage observed by client (connection refused)")
    finally:
        if proc.poll() is None:
            proc.kill()

    proc, address = spawn_server()
    try:
        # Fresh server starts empty: sessions are in-memory, so gateways
        # re-create and re-drive (documented recovery model).
        drive_sessions(address, max(2, args.sessions // 4), args.rows, args.n, args.k, seed0=900)

        # --- phase 4: kill/restore with --checkpoint-dir ------------------
        checkpoint_restore_phase(
            max(2, args.sessions // 4), args.rows, args.n, args.k, seed0=1300
        )

        # --- phase 5: clean shutdown over the wire -----------------------
        with make_client(address) as client:
            client.shutdown()
        code = proc.wait(timeout=30)
        if code != 0:
            raise SystemExit(f"server exited {code} after shutdown op")
        print("clean shutdown: exit code 0")
    finally:
        if proc.poll() is None:
            proc.kill()
            raise SystemExit("server had to be killed after shutdown request")
    export_traces()
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    start = time.perf_counter()
    code = main()
    print(f"(elapsed: {time.perf_counter() - start:.1f}s)")
    raise SystemExit(code)
