"""Keep the README's registry tables in sync with the actual registries.

The engine, backend, and experiment tables in ``README.md`` are *generated*
from :func:`repro.engine.registry.list_engines`,
:func:`repro.analysis.backends.list_backends`, and
:func:`repro.experiments.spec.list_experiments`, between marker comments::

    <!-- BEGIN GENERATED: engines -->
    ...table...
    <!-- END GENERATED: engines -->

Usage::

    PYTHONPATH=src python tools/sync_docs.py --check   # CI: fail on drift
    PYTHONPATH=src python tools/sync_docs.py --write   # regenerate in place

``--check`` exits 1 and prints a unified diff when a table has drifted from
the registry (e.g. someone registered an engine without regenerating the
README).
"""

from __future__ import annotations

import argparse
import difflib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _md_table(header: list[str], rows: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def render_engines() -> str:
    from repro.engine.registry import list_engines

    rows = [
        [f"`{e.name}`", ", ".join(sorted(e.capabilities)), e.description]
        for e in list_engines()
    ]
    return _md_table(["engine", "capabilities", "description"], rows)


def render_backends() -> str:
    from repro.analysis.backends import list_backends

    rows = [[f"`{b.name}`", b.description] for b in list_backends()]
    return _md_table(["backend", "description"], rows)


def render_experiments() -> str:
    from repro.experiments.spec import list_experiments

    # Importing the package registers every experiment module.
    import repro.experiments  # noqa: F401

    rows = [[f"`{exp_id}`", title] for exp_id, title in list_experiments()]
    return _md_table(["id", "claim under test"], rows)


def render_lint_rules() -> str:
    from repro.lint.registry import list_rules

    rows = [[f"`{r.id}`", f"`{r.slug}`", r.summary] for r in list_rules()]
    return _md_table(["rule", "name", "checks that"], rows)


def render_metrics() -> str:
    # Families self-register at import, so pull in every declaring module
    # first — the same set the obs wire op sees in a fully loaded process.
    import repro.analysis.distributed_backend  # noqa: F401
    import repro.distributed.runtime  # noqa: F401
    import repro.engine.fast  # noqa: F401
    import repro.engine.kernel  # noqa: F401
    import repro.faults.runtime  # noqa: F401
    import repro.faults.transport  # noqa: F401
    import repro.service.fleet  # noqa: F401
    import repro.service.metrics  # noqa: F401
    import repro.service.wire  # noqa: F401
    from repro.obs.registry import list_families

    rows = [
        [
            f"`{f.name}`",
            f.kind,
            ", ".join(f"`{ln}`" for ln in f.labelnames) or "—",
            f.help,
        ]
        for f in list_families()
    ]
    return _md_table(["metric", "kind", "labels", "meaning"], rows)


RENDERERS = {
    "engines": render_engines,
    "backends": render_backends,
    "experiments": render_experiments,
    "lint-rules": render_lint_rules,
    "metrics": render_metrics,
}


def _inject(text: str, kind: str, table: str) -> str:
    pattern = re.compile(
        rf"(<!-- BEGIN GENERATED: {kind} -->)\n(?:.*?\n)?(<!-- END GENERATED: {kind} -->)",
        re.DOTALL,
    )
    if not pattern.search(text):
        raise SystemExit(f"README is missing the GENERATED markers for {kind!r}")
    return pattern.sub(lambda m: m.group(1) + "\n" + table + "\n" + m.group(2), text)


def sync(readme: Path, write: bool) -> int:
    """Return 0 when in sync (or after writing); 1 on drift in check mode."""
    original = readme.read_text()
    updated = original
    for kind, renderer in RENDERERS.items():
        updated = _inject(updated, kind, renderer())
    if updated == original:
        print(f"{readme.name}: registry tables in sync")
        return 0
    if write:
        readme.write_text(updated)
        print(f"{readme.name}: registry tables regenerated")
        return 0
    diff = difflib.unified_diff(
        original.splitlines(keepends=True),
        updated.splitlines(keepends=True),
        fromfile=f"{readme.name} (checked in)",
        tofile=f"{readme.name} (from registries)",
    )
    sys.stderr.writelines(diff)
    print(
        f"{readme.name}: registry tables drifted; run "
        "`PYTHONPATH=src python tools/sync_docs.py --write`",
        file=sys.stderr,
    )
    return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--check", action="store_true", help="fail if tables drifted (default)")
    mode.add_argument("--write", action="store_true", help="regenerate tables in place")
    parser.add_argument(
        "--readme", type=Path, default=REPO_ROOT / "README.md", help="file to sync"
    )
    args = parser.parse_args(argv)
    return sync(args.readme, write=args.write)


if __name__ == "__main__":
    raise SystemExit(main())
